package power

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
)

// CacheParams models one L2 bank: the paper uses 1.28 W per bank from
// CACTI 4.0. A fraction of that is standby (clocking, decoders); the
// rest scales with access activity.
type CacheParams struct {
	MaxW     float64
	IdleFrac float64 // fraction of MaxW drawn at zero activity
}

// DefaultCacheParams returns the CACTI-derived values.
func DefaultCacheParams() CacheParams { return CacheParams{MaxW: 1.28, IdleFrac: 0.3} }

// Power returns the bank's power for an activity factor in [0,1].
func (c CacheParams) Power(activity float64) float64 {
	a := math.Min(math.Max(activity, 0), 1)
	return c.MaxW * (c.IdleFrac + (1-c.IdleFrac)*a)
}

// CrossbarParams models the core-to-cache crossbar. The paper scales the
// crossbar's average power by the number of active cores and the memory
// access statistics.
type CrossbarParams struct {
	MaxW     float64 // at all cores active and peak memory traffic
	IdleFrac float64
}

// DefaultCrossbarParams sizes the CCX per the published T1 unit power
// breakdown (a few percent of chip power at full traffic).
func DefaultCrossbarParams() CrossbarParams { return CrossbarParams{MaxW: 2.0, IdleFrac: 0.15} }

// Power returns the crossbar power given the fraction of cores active
// and a normalized memory traffic factor, both in [0,1].
func (c CrossbarParams) Power(activeFrac, memTraffic float64) float64 {
	a := math.Min(math.Max(activeFrac, 0), 1)
	mt := math.Min(math.Max(memTraffic, 0), 1)
	activity := 0.5*a + 0.5*mt
	return c.MaxW * (c.IdleFrac + (1-c.IdleFrac)*activity)
}

// Model bundles every power component for a chip.
type Model struct {
	DVFS  DVFSTable
	Core  CoreParams
	Cache CacheParams
	Xbar  CrossbarParams
	Leak  LeakageModel

	// OtherW is the switching power of each core-layer "other" block
	// (FPU, I/O pads, buffers); MemOtherW of each memory-layer filler
	// block (tags, test structures).
	OtherW    float64
	MemOtherW float64

	// LeakageEnabled folds the temperature-dependent leakage loop into
	// block power. Disable for experiments isolating dynamic power.
	LeakageEnabled bool
}

// DefaultModel returns the paper's full power model.
func DefaultModel() Model {
	return Model{
		DVFS:           DefaultDVFS(),
		Core:           DefaultCoreParams(),
		Cache:          DefaultCacheParams(),
		Xbar:           DefaultCrossbarParams(),
		Leak:           DefaultLeakage(),
		OtherW:         0.6,
		MemOtherW:      0.3,
		LeakageEnabled: true,
	}
}

// Validate checks all components.
func (m Model) Validate() error {
	if err := m.DVFS.Validate(); err != nil {
		return err
	}
	if err := m.Leak.Validate(); err != nil {
		return err
	}
	if m.Core.ActiveW <= 0 || m.Core.IdleW < 0 || m.Core.SleepW < 0 {
		return fmt.Errorf("power: core params out of range: %+v", m.Core)
	}
	if m.Core.IdleW > m.Core.ActiveW {
		return fmt.Errorf("power: idle power %g exceeds active power %g", m.Core.IdleW, m.Core.ActiveW)
	}
	if m.OtherW < 0 || m.MemOtherW < 0 {
		return fmt.Errorf("power: other-block powers must be >= 0")
	}
	return nil
}

// CoreInput is the per-core operating point for one interval.
type CoreInput struct {
	State CoreState
	Level VfLevel
	Util  float64 // fraction of the interval spent executing
	// MemActivity in [0,1] summarizes the core's cache/memory traffic
	// (derived from the workload's L2 miss statistics).
	MemActivity float64
}

// ChipInput is everything Compute needs for one interval.
type ChipInput struct {
	Cores []CoreInput
	// BlockTempsC are the previous interval's block temperatures used for
	// the leakage feedback loop (one-tick lag); nil means ambient-cold.
	BlockTempsC []float64
	AmbientC    float64
}

// Compute returns the per-block power vector (W) for the stack, in stack
// block order. The L2 activity of a bank follows the average memory
// activity of all cores (the T1 interleaves L2 banks across cores), and
// the crossbar follows active-core count and total memory traffic, as
// described in Section IV-B.
func (m Model) Compute(stack *floorplan.Stack, in ChipInput) ([]float64, error) {
	out := make([]float64, stack.NumBlocks())
	if err := m.ComputeInto(out, stack, in); err != nil {
		return nil, err
	}
	return out, nil
}

// ComputeInto is Compute writing into a caller-owned dst of length
// stack.NumBlocks(). dst is fully overwritten; the hot tick loop reuses
// one power buffer across the whole run.
func (m Model) ComputeInto(dst []float64, stack *floorplan.Stack, in ChipInput) error {
	if len(in.Cores) != stack.NumCores() {
		return fmt.Errorf("power: got %d core inputs for %d cores", len(in.Cores), stack.NumCores())
	}
	if in.BlockTempsC != nil && len(in.BlockTempsC) != stack.NumBlocks() {
		return fmt.Errorf("power: got %d block temperatures for %d blocks", len(in.BlockTempsC), stack.NumBlocks())
	}
	if len(dst) != stack.NumBlocks() {
		return fmt.Errorf("power: destination has %d entries for %d blocks", len(dst), stack.NumBlocks())
	}

	// Chip-wide activity summaries.
	activeCores := 0
	memTraffic := 0.0
	for _, c := range in.Cores {
		if c.State == StateActive {
			activeCores++
		}
		memTraffic += c.MemActivity * c.Util
	}
	activeFrac := float64(activeCores) / float64(len(in.Cores))
	memTraffic = math.Min(memTraffic/float64(len(in.Cores))*2, 1) // saturating

	for bi, b := range stack.Blocks() {
		var p float64
		var volt float64 = 1
		switch b.Kind {
		case floorplan.KindCore:
			ci := in.Cores[b.CoreID]
			// PowerScale models heterogeneous tiers (smaller/simpler
			// cores draw proportionally less dynamic power); it is
			// exactly 1.0 for homogeneous stacks, which multiplies to
			// bitwise-identical float64s.
			p = m.Core.Power(m.DVFS, ci.State, ci.Level, ci.Util) * b.PowerScale
			volt = m.DVFS.VoltScale(ci.Level)
			if ci.State == StateSleep {
				volt = 0.3 // power-gated rail retains only a keeper voltage
			}
		case floorplan.KindL2:
			p = m.Cache.Power(memTraffic)
		case floorplan.KindCrossbar:
			p = m.Xbar.Power(activeFrac, memTraffic)
		case floorplan.KindOther:
			if onMemoryLayer(stack, b) {
				p = m.MemOtherW
			} else {
				p = m.OtherW
			}
		}
		if m.LeakageEnabled {
			temp := in.AmbientC
			if in.BlockTempsC != nil {
				temp = in.BlockTempsC[bi]
			}
			p += m.Leak.BlockLeakage(b.Area(), temp, volt) * leakDensityFactor(b.Kind)
		}
		dst[bi] = p
	}
	return nil
}

// leakDensityFactor scales the logic-calibrated base leakage density
// (0.5 W/mm² at 383 K, [5]) by block type: SRAM arrays leak considerably
// less per area than high-performance logic at 90 nm, and the mixed
// "other" regions sit in between. This is the per-structural-area
// differentiation Section IV-B describes.
func leakDensityFactor(k floorplan.BlockKind) float64 {
	switch k {
	case floorplan.KindCore:
		// Section IV-B computes leakage for the processing cores at the
		// full logic density.
		return 1.0
	case floorplan.KindL2:
		// SRAM arrays leak far less per area than hot logic.
		return 0.15
	case floorplan.KindCrossbar:
		return 0.3
	default: // mixed "other" regions
		return 0.25
	}
}

// onMemoryLayer reports whether the block sits on a layer with no cores.
// It scans instead of calling Layer.Cores, which allocates; this runs per
// filler block inside the per-tick power computation.
func onMemoryLayer(stack *floorplan.Stack, b *floorplan.Block) bool {
	for _, blk := range stack.Layers[b.Layer].Blocks {
		if blk.IsCore() {
			return false
		}
	}
	return true
}

// Total sums a block power vector.
func Total(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}
