package power

import "repro/internal/floorplan"

// EnergyState is a value snapshot of an EnergyMeter's accumulators,
// used by the simulation engine's checkpoint machinery. The zero value
// is a ready Save destination; the per-kind map is reused across Save
// calls, so a steady snapshot cadence settles to zero allocations.
type EnergyState struct {
	totalJ  float64
	elapsed float64
	byKind  map[floorplan.BlockKind]float64
}

// Save captures the meter's accumulated energy into s.
func (e *EnergyMeter) Save(s *EnergyState) {
	s.totalJ = e.totalJ
	s.elapsed = e.elapsed
	if s.byKind == nil {
		s.byKind = make(map[floorplan.BlockKind]float64, len(e.byKind))
	}
	clear(s.byKind)
	for k, v := range e.byKind {
		s.byKind[k] = v
	}
}

// Load restores the meter's accumulators from s.
func (e *EnergyMeter) Load(s *EnergyState) {
	e.totalJ = s.totalJ
	e.elapsed = s.elapsed
	clear(e.byKind)
	for k, v := range s.byKind {
		e.byKind[k] = v
	}
}
