package power

import (
	"fmt"
	"math"
)

// CoreState is the operating state of one core.
type CoreState int

const (
	// StateActive means the core is executing (possibly partially
	// utilized within the interval).
	StateActive CoreState = iota
	// StateIdle means the core has no work but remains clocked.
	StateIdle
	// StateSleep is the DPM deep-sleep state (0.02 W in the paper).
	StateSleep
	// StateGated means the clock is gated by the CGate thermal policy:
	// no dynamic power, leakage still applies.
	StateGated
)

// String implements fmt.Stringer.
func (s CoreState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateIdle:
		return "idle"
	case StateSleep:
		return "sleep"
	case StateGated:
		return "gated"
	default:
		return fmt.Sprintf("CoreState(%d)", int(s))
	}
}

// VfLevel indexes a voltage/frequency setting; 0 is the default (highest)
// setting and larger values are slower.
type VfLevel int

// DVFSTable holds the relative frequency and voltage of each available
// V/f setting. The paper assumes three built-in settings per core:
// default, 95% and 85% of default (Section III-A), with voltage scaling
// proportionally.
type DVFSTable struct {
	Freq []float64 // relative to default, descending
	Volt []float64 // relative to default
}

// DefaultDVFS returns the paper's three-level table.
func DefaultDVFS() DVFSTable {
	return DVFSTable{
		Freq: []float64{1.0, 0.95, 0.85},
		Volt: []float64{1.0, 0.95, 0.85},
	}
}

// Validate checks the table's internal consistency.
func (t DVFSTable) Validate() error {
	if len(t.Freq) == 0 || len(t.Freq) != len(t.Volt) {
		return fmt.Errorf("power: DVFS table needs equal nonzero freq/volt entries, got %d/%d", len(t.Freq), len(t.Volt))
	}
	for i := range t.Freq {
		if t.Freq[i] <= 0 || t.Freq[i] > 1 || t.Volt[i] <= 0 || t.Volt[i] > 1 {
			return fmt.Errorf("power: DVFS entry %d out of (0,1]: f=%g v=%g", i, t.Freq[i], t.Volt[i])
		}
		if i > 0 && t.Freq[i] >= t.Freq[i-1] {
			return fmt.Errorf("power: DVFS frequencies must be strictly descending at entry %d", i)
		}
	}
	return nil
}

// Levels returns the number of V/f settings.
func (t DVFSTable) Levels() int { return len(t.Freq) }

// Clamp restricts l to the valid range.
func (t DVFSTable) Clamp(l VfLevel) VfLevel {
	if l < 0 {
		return 0
	}
	if int(l) >= t.Levels() {
		return VfLevel(t.Levels() - 1)
	}
	return l
}

// FreqScale returns the relative frequency of level l.
func (t DVFSTable) FreqScale(l VfLevel) float64 { return t.Freq[t.Clamp(l)] }

// VoltScale returns the relative voltage of level l.
func (t DVFSTable) VoltScale(l VfLevel) float64 { return t.Volt[t.Clamp(l)] }

// PowerScale returns the dynamic power scaling factor f·V² of level l,
// normalized to 1 at the default setting.
func (t DVFSTable) PowerScale(l VfLevel) float64 {
	l = t.Clamp(l)
	return t.Freq[l] * t.Volt[l] * t.Volt[l]
}

// LowestLevelFor returns the slowest level whose relative frequency still
// covers the requested utilization (the DVFS_Util rule: run as slowly as
// the observed workload allows).
func (t DVFSTable) LowestLevelFor(utilization float64) VfLevel {
	u := math.Min(math.Max(utilization, 0), 1)
	best := VfLevel(0)
	for l := 0; l < t.Levels(); l++ {
		if t.Freq[l] >= u {
			best = VfLevel(l)
		} else {
			break
		}
	}
	return best
}

// CoreParams sets the per-core state powers at the default V/f level.
type CoreParams struct {
	ActiveW float64 // paper: 3 W (UltraSPARC T1 core, incl. baseline leakage)
	IdleW   float64 // clocked but stalled
	SleepW  float64 // paper: 0.02 W
}

// DefaultCoreParams returns the paper's values; idle draws the clock
// tree and front-end only.
func DefaultCoreParams() CoreParams {
	return CoreParams{ActiveW: 3.0, IdleW: 0.2, SleepW: 0.02}
}

// Power returns the core's switching power in W given its state, V/f
// level, and utilization (fraction of the interval spent executing).
func (c CoreParams) Power(t DVFSTable, st CoreState, l VfLevel, util float64) float64 {
	util = math.Min(math.Max(util, 0), 1)
	switch st {
	case StateSleep:
		return c.SleepW
	case StateGated:
		return 0 // clock gated: no switching power at all
	case StateIdle:
		return c.IdleW * t.PowerScale(l)
	default:
		return (util*c.ActiveW + (1-util)*c.IdleW) * t.PowerScale(l)
	}
}
