package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
)

func TestDefaultDVFSMatchesPaper(t *testing.T) {
	d := DefaultDVFS()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Levels() != 3 {
		t.Fatalf("paper assumes 3 V/f levels, got %d", d.Levels())
	}
	want := []float64{1.0, 0.95, 0.85}
	for i, f := range want {
		if d.FreqScale(VfLevel(i)) != f {
			t.Errorf("level %d freq = %g, want %g", i, d.FreqScale(VfLevel(i)), f)
		}
	}
}

func TestDVFSPowerScaleIsFV2(t *testing.T) {
	d := DefaultDVFS()
	for l := 0; l < d.Levels(); l++ {
		want := d.Freq[l] * d.Volt[l] * d.Volt[l]
		if got := d.PowerScale(VfLevel(l)); math.Abs(got-want) > 1e-12 {
			t.Errorf("level %d power scale = %g, want f·V² = %g", l, got, want)
		}
	}
	if d.PowerScale(0) != 1 {
		t.Error("default level must have unit power scale")
	}
}

func TestDVFSClamp(t *testing.T) {
	d := DefaultDVFS()
	if d.Clamp(-3) != 0 {
		t.Error("negative level should clamp to 0")
	}
	if d.Clamp(99) != VfLevel(d.Levels()-1) {
		t.Error("oversized level should clamp to slowest")
	}
}

func TestDVFSLowestLevelFor(t *testing.T) {
	d := DefaultDVFS()
	cases := []struct {
		util float64
		want VfLevel
	}{
		{0.99, 0}, // needs full speed
		{0.95, 1}, // exactly the middle setting
		{0.90, 1}, // middle covers 0.90
		{0.80, 2}, // slowest covers 0.80
		{0.10, 2}, // deeply idle: slowest
		{-1, 2},   // clamped
		{2, 0},    // clamped to full speed
	}
	for _, c := range cases {
		if got := d.LowestLevelFor(c.util); got != c.want {
			t.Errorf("LowestLevelFor(%g) = %d, want %d", c.util, got, c.want)
		}
	}
}

func TestDVFSValidate(t *testing.T) {
	bad := DVFSTable{Freq: []float64{1.0, 1.0}, Volt: []float64{1, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("non-descending frequencies accepted")
	}
	bad = DVFSTable{Freq: []float64{1.0}, Volt: []float64{}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched lengths accepted")
	}
	bad = DVFSTable{Freq: []float64{1.5}, Volt: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Error("frequency above 1 accepted")
	}
}

func TestCorePowerStates(t *testing.T) {
	c := DefaultCoreParams()
	d := DefaultDVFS()
	if got := c.Power(d, StateActive, 0, 1); got != 3.0 {
		t.Errorf("fully active core = %g W, paper says 3 W", got)
	}
	if got := c.Power(d, StateSleep, 0, 1); got != 0.02 {
		t.Errorf("sleeping core = %g W, paper says 0.02 W", got)
	}
	if got := c.Power(d, StateGated, 0, 1); got != 0 {
		t.Errorf("gated core switching power = %g W, want 0", got)
	}
	idle := c.Power(d, StateIdle, 0, 0)
	act := c.Power(d, StateActive, 0, 0.5)
	if !(idle < act && act < 3.0) {
		t.Errorf("expected idle (%g) < half-util (%g) < 3", idle, act)
	}
}

func TestCorePowerDVFSReduces(t *testing.T) {
	c := DefaultCoreParams()
	d := DefaultDVFS()
	p0 := c.Power(d, StateActive, 0, 1)
	p1 := c.Power(d, StateActive, 1, 1)
	p2 := c.Power(d, StateActive, 2, 1)
	if !(p2 < p1 && p1 < p0) {
		t.Errorf("power must decrease with level: %g, %g, %g", p0, p1, p2)
	}
	if math.Abs(p2/p0-0.85*0.85*0.85) > 1e-9 {
		t.Errorf("slowest level power ratio %g, want f·V² = %g", p2/p0, 0.85*0.85*0.85)
	}
}

func TestLeakageCalibration(t *testing.T) {
	l := DefaultLeakage()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// At the 383 K reference the uncapped density must be exactly
	// 0.5 W/mm² ([5]); the default model saturates at the 85 °C value.
	uncapped := l
	uncapped.GCap = 1.0
	if got := uncapped.BlockLeakage(1, 383-273.15, 1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("uncapped leakage density at 383 K = %g, want 0.5", got)
	}
	if got := l.TempFactor(120); math.Abs(got-l.GCap) > 1e-9 {
		t.Errorf("capped TempFactor(120 °C) = %g, want saturation value %g", got, l.GCap)
	}
	// Normalized shape of [25]: ~25% of the reference value at 85 °C and
	// ~10% at 70 °C (exponential subthreshold dependence).
	if g := l.TempFactor(85); math.Abs(g-0.25) > 0.02 {
		t.Errorf("TempFactor(85 °C) = %g, want ~0.25", g)
	}
	if g := l.TempFactor(70); math.Abs(g-0.10) > 0.02 {
		t.Errorf("TempFactor(70 °C) = %g, want ~0.10", g)
	}
}

// TestDefaultGCapCalibration pins the saturation constant to its
// documented calibration point: DefaultLeakage caps the temperature
// factor at g(85 °C) — the paper's emergency threshold, the hottest
// point the managed system is meant to reach. The GCap field comment
// used to claim the 90 °C value (g(90 °C) ≈ 0.353) while the constant
// was 0.25 ≈ g(85 °C); this test keeps doc and constant reconciled.
func TestDefaultGCapCalibration(t *testing.T) {
	l := DefaultLeakage()
	// The uncapped quadratic at the calibration temperature.
	dt := (85 + 273.15) - l.TRefK
	raw := 1 + l.C1*dt + l.C2*dt*dt
	if math.Abs(raw-l.GCap)/raw > 0.015 {
		t.Errorf("GCap = %g, but uncapped g(85 °C) = %.6f: constant no longer matches its calibration point", l.GCap, raw)
	}
	// And it must NOT match the 90 °C value the old comment claimed.
	dt90 := (90 + 273.15) - l.TRefK
	raw90 := 1 + l.C1*dt90 + l.C2*dt90*dt90
	if math.Abs(raw90-l.GCap)/raw90 < 0.015 {
		t.Errorf("GCap = %g unexpectedly matches g(90 °C) = %.6f", l.GCap, raw90)
	}
	// TempFactor saturates exactly at GCap from the cap temperature up.
	if got := l.TempFactor(85.5); math.Abs(got-l.GCap) > 1e-12 {
		t.Errorf("TempFactor just above the cap point = %g, want GCap %g", got, l.GCap)
	}
}

func TestLeakageMonotoneInTemperature(t *testing.T) {
	l := DefaultLeakage()
	f := func(a, b uint8) bool {
		t1 := 20 + float64(a%90)
		t2 := 20 + float64(b%90)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return l.TempFactor(t1) <= l.TempFactor(t2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeakageVoltageQuadratic(t *testing.T) {
	l := DefaultLeakage()
	full := l.BlockLeakage(10, 70, 1.0)
	reduced := l.BlockLeakage(10, 70, 0.85)
	if math.Abs(reduced/full-0.85*0.85) > 1e-9 {
		t.Errorf("voltage scaling ratio %g, want V² = %g", reduced/full, 0.85*0.85)
	}
	if l.BlockLeakage(0, 70, 1) != 0 {
		t.Error("zero-area block should leak nothing")
	}
}

func TestLeakageFloor(t *testing.T) {
	l := DefaultLeakage()
	if g := l.TempFactor(-200); g < 0.02-1e-12 {
		t.Errorf("TempFactor floor violated: %g", g)
	}
}

func TestCachePower(t *testing.T) {
	c := DefaultCacheParams()
	if got := c.Power(1); math.Abs(got-1.28) > 1e-12 {
		t.Errorf("fully active L2 = %g W, paper says 1.28 W", got)
	}
	if c.Power(0) >= c.Power(1) {
		t.Error("idle cache should draw less than active")
	}
	if c.Power(-1) != c.Power(0) || c.Power(2) != c.Power(1) {
		t.Error("activity should clamp to [0,1]")
	}
}

func TestCrossbarPowerScalesWithActivity(t *testing.T) {
	x := DefaultCrossbarParams()
	idle := x.Power(0, 0)
	busy := x.Power(1, 1)
	half := x.Power(0.5, 0.5)
	if !(idle < half && half < busy) {
		t.Errorf("crossbar power not monotone: %g, %g, %g", idle, half, busy)
	}
	if math.Abs(busy-x.MaxW) > 1e-12 {
		t.Errorf("peak crossbar = %g, want MaxW=%g", busy, x.MaxW)
	}
}

func chipInput(n int, st CoreState, lvl VfLevel, util float64) ChipInput {
	cores := make([]CoreInput, n)
	for i := range cores {
		cores[i] = CoreInput{State: st, Level: lvl, Util: util, MemActivity: 0.3}
	}
	return ChipInput{Cores: cores, AmbientC: 45}
}

func TestComputeBlockVector(t *testing.T) {
	s := floorplan.MustBuild(floorplan.EXP1)
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	pv, err := m.Compute(s, chipInput(8, StateActive, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pv) != s.NumBlocks() {
		t.Fatalf("power vector length %d, want %d", len(pv), s.NumBlocks())
	}
	for i, p := range pv {
		if p < 0 {
			t.Errorf("block %d has negative power %g", i, p)
		}
	}
	// A fully busy chip should draw meaningfully more than an idle one.
	idle, _ := m.Compute(s, chipInput(8, StateIdle, 0, 0))
	if Total(pv) <= Total(idle) {
		t.Errorf("busy total %g W <= idle total %g W", Total(pv), Total(idle))
	}
}

func TestComputeLeakageFeedback(t *testing.T) {
	s := floorplan.MustBuild(floorplan.EXP1)
	m := DefaultModel()
	in := chipInput(8, StateActive, 0, 1)
	cold, _ := m.Compute(s, in)
	hot := make([]float64, s.NumBlocks())
	for i := range hot {
		hot[i] = 90
	}
	in.BlockTempsC = hot
	hotP, _ := m.Compute(s, in)
	if Total(hotP) <= Total(cold) {
		t.Errorf("hot chip should leak more: %g W vs %g W", Total(hotP), Total(cold))
	}
}

func TestComputeLeakageDisabled(t *testing.T) {
	s := floorplan.MustBuild(floorplan.EXP1)
	m := DefaultModel()
	m.LeakageEnabled = false
	in := chipInput(8, StateSleep, 0, 0)
	pv, _ := m.Compute(s, in)
	// With leakage off and all cores asleep, core blocks draw exactly
	// the sleep power.
	for _, c := range s.Cores() {
		if got := pv[s.BlockIndex(c)]; got != 0.02 {
			t.Errorf("sleeping core draws %g W, want 0.02", got)
		}
	}
}

func TestComputeValidation(t *testing.T) {
	s := floorplan.MustBuild(floorplan.EXP1)
	m := DefaultModel()
	if _, err := m.Compute(s, chipInput(3, StateActive, 0, 1)); err == nil {
		t.Error("wrong core count accepted")
	}
	in := chipInput(8, StateActive, 0, 1)
	in.BlockTempsC = []float64{1, 2}
	if _, err := m.Compute(s, in); err == nil {
		t.Error("wrong block temp count accepted")
	}
}

func TestModelValidate(t *testing.T) {
	m := DefaultModel()
	m.Core.IdleW = 10
	if err := m.Validate(); err == nil {
		t.Error("idle > active accepted")
	}
	m = DefaultModel()
	m.OtherW = -1
	if err := m.Validate(); err == nil {
		t.Error("negative other power accepted")
	}
}

func TestEnergyMeter(t *testing.T) {
	s := floorplan.MustBuild(floorplan.EXP1)
	m := DefaultModel()
	pv, _ := m.Compute(s, chipInput(8, StateActive, 0, 1))
	e := NewEnergyMeter()
	if err := e.Accumulate(s, pv, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := e.Accumulate(s, pv, 0.1); err != nil {
		t.Fatal(err)
	}
	wantJ := Total(pv) * 0.2
	if math.Abs(e.TotalJ()-wantJ) > 1e-9 {
		t.Errorf("TotalJ = %g, want %g", e.TotalJ(), wantJ)
	}
	if math.Abs(e.AveragePowerW()-Total(pv)) > 1e-9 {
		t.Errorf("AveragePowerW = %g, want %g", e.AveragePowerW(), Total(pv))
	}
	if e.ByKindJ(floorplan.KindCore) <= 0 {
		t.Error("no core energy recorded")
	}
	if e.ElapsedS() != 0.2 {
		t.Errorf("elapsed = %g, want 0.2", e.ElapsedS())
	}
}

func TestEnergyMeterValidation(t *testing.T) {
	s := floorplan.MustBuild(floorplan.EXP1)
	e := NewEnergyMeter()
	if err := e.Accumulate(s, []float64{1}, 0.1); err == nil {
		t.Error("wrong vector length accepted")
	}
	pv := make([]float64, s.NumBlocks())
	if err := e.Accumulate(s, pv, 0); err == nil {
		t.Error("zero dt accepted")
	}
}

func TestCoreStateString(t *testing.T) {
	if StateActive.String() != "active" || StateSleep.String() != "sleep" ||
		StateGated.String() != "gated" || StateIdle.String() != "idle" {
		t.Error("CoreState.String unexpected")
	}
}
