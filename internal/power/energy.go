package power

import (
	"fmt"

	"repro/internal/floorplan"
)

// EnergyMeter accumulates energy per block category over a simulation,
// used for the energy-reduction claims of the DPM/DVFS comparisons.
type EnergyMeter struct {
	totalJ  float64
	byKind  map[floorplan.BlockKind]float64
	elapsed float64
}

// NewEnergyMeter returns an empty meter.
func NewEnergyMeter() *EnergyMeter {
	return &EnergyMeter{byKind: make(map[floorplan.BlockKind]float64)}
}

// Accumulate adds one interval of length dt seconds with the given
// per-block power vector.
func (e *EnergyMeter) Accumulate(stack *floorplan.Stack, blockPower []float64, dt float64) error {
	if len(blockPower) != stack.NumBlocks() {
		return fmt.Errorf("power: energy meter got %d powers for %d blocks", len(blockPower), stack.NumBlocks())
	}
	if dt <= 0 {
		return fmt.Errorf("power: energy interval must be positive, got %g", dt)
	}
	for bi, b := range stack.Blocks() {
		j := blockPower[bi] * dt
		e.totalJ += j
		e.byKind[b.Kind] += j
	}
	e.elapsed += dt
	return nil
}

// TotalJ returns the accumulated energy in joules.
func (e *EnergyMeter) TotalJ() float64 { return e.totalJ }

// ByKindJ returns the energy attributed to one block kind.
func (e *EnergyMeter) ByKindJ(k floorplan.BlockKind) float64 { return e.byKind[k] }

// AveragePowerW returns total energy divided by elapsed time.
func (e *EnergyMeter) AveragePowerW() float64 {
	if e.elapsed == 0 {
		return 0
	}
	return e.totalJ / e.elapsed
}

// ElapsedS returns the accumulated simulated time in seconds.
func (e *EnergyMeter) ElapsedS() float64 { return e.elapsed }
