// Package power implements the paper's power model (Section IV-B):
// per-core active/idle/sleep states, three-level DVFS with P ∝ f·V²
// scaling, temperature- and voltage-dependent leakage (second-order
// polynomial in the style of Su et al. [25], calibrated to 0.5 W/mm²
// at 383 K), CACTI-derived L2 cache power, activity-scaled crossbar
// power, and per-category energy accounting.
//
// # Place in the dataflow
//
// Each simulation tick, the engine (internal/sim) assembles a
// ChipInput from the scheduler's utilization/state vector and the
// previous interval's block temperatures (the leakage feedback loop),
// and Model.ComputeInto fills the per-block power vector that drives
// the thermal model's next transient step. The DVFSTable doubles as
// the policy layer's actuator vocabulary: policies pick VfLevels, the
// engine converts them to frequency scales for the scheduler and
// voltage/frequency factors for this model.
//
// # Buffer ownership and concurrency
//
// ComputeInto writes into a caller-owned block-power slice and retains
// neither it nor the input temperature slice — the tick loop's
// allocation contract depends on that. Model values are plain data;
// distinct simulations use distinct copies and nothing here locks.
package power
