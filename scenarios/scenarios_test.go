package scenarios

import (
	"context"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/floorplan"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/thermal"
)

// TestLibraryGate is the scenario-library gate CI runs: every shipped
// file must parse strictly, validate, build, produce a solvable block
// thermal model, and survive a short simulation. A library spec that
// regresses any of these cannot ship.
func TestLibraryGate(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("library has %d scenarios, want at least 3 (big.LITTLE, DRAM-on-logic, microfluidic)", len(names))
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			spec, ok := Spec(name)
			if !ok {
				t.Fatalf("library name %q has no spec", name)
			}
			if spec.Name != name {
				t.Fatalf("spec name %q filed under %q", spec.Name, name)
			}
			st, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Validate(); err != nil {
				t.Fatal(err)
			}
			m, err := thermal.NewBlockModel(st, thermal.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			pw := make([]float64, st.NumBlocks())
			for _, b := range st.Cores() {
				pw[st.BlockIndex(b)] = 3
			}
			if _, err := m.SteadyState(pw); err != nil {
				t.Fatalf("steady state: %v", err)
			}
			// One-tick-plus simulation smoke through the full engine.
			specCopy := spec
			res, err := sim.Run(sim.Config{
				Policy:    policy.NewDefault(),
				StackSpec: &specCopy,
				DurationS: 2,
				Seed:      1,
			})
			if err != nil {
				t.Fatalf("simulation smoke: %v", err)
			}
			if res.Ticks == 0 {
				t.Fatal("simulation smoke completed zero ticks")
			}
			// Registered under the same name, with identical content.
			reg, ok := floorplan.LookupStackSpec(name)
			if !ok || reg.Hash() != spec.Hash() {
				t.Error("library spec not registered (or registered with different content)")
			}
		})
	}
}

// collectSink gathers sweep records in memory.
type collectSink struct {
	mu   sync.Mutex
	recs []sweep.Record
}

func (c *collectSink) Put(r sweep.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, r)
	return nil
}

func (c *collectSink) Close() error { return nil }

// TestLibraryFullPolicyRoster runs every library scenario through the
// real sweep pipeline with the complete policy roster and the
// reliability tracker attached — the acceptance path for new library
// entries: each must compose with all 14 policies, not just Default.
func TestLibraryFullPolicyRoster(t *testing.T) {
	if testing.Short() {
		t.Skip("full roster sweep is not a -short test")
	}
	var scens []sweep.Scenario
	for _, name := range Names() {
		scens = append(scens, sweep.Scenario{Stack: &sweep.StackRef{Name: name}})
	}
	spec := sweep.Spec{
		Scenarios:   scens,
		Policies:    exp.PolicyOrder,
		Benchmarks:  []string{"Web-med"},
		DurationsS:  []float64{2},
		Reliability: true,
	}
	jobs := spec.Expand()
	if want := len(Names()) * len(exp.PolicyOrder); len(jobs) != want {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), want)
	}
	sink := &collectSink{}
	n, err := sweep.Execute(context.Background(), jobs, exp.NewRunner(), sweep.Options{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(jobs) {
		t.Fatalf("executed %d jobs, want %d", n, len(jobs))
	}
	seen := map[string]bool{}
	for _, r := range sink.recs {
		seen[r.Scenario+"/"+r.Policy] = true
		if r.RelMTTF <= 0 {
			t.Errorf("%s/%s: reliability tracker left rel_mttf at %g", r.Scenario, r.Policy, r.RelMTTF)
		}
		if r.MaxTempC <= 0 {
			t.Errorf("%s/%s: implausible max temperature %g", r.Scenario, r.Policy, r.MaxTempC)
		}
	}
	for _, name := range Names() {
		for _, p := range exp.PolicyOrder {
			if !seen["stack:"+name+"/"+p] {
				t.Errorf("no record for scenario %q policy %q", name, p)
			}
		}
	}
}

// TestLoad pins the CLI -stack argument resolution order: readable file
// first, then registry name, with a clear error for everything else.
func TestLoad(t *testing.T) {
	byFile, err := Load("big-little.json")
	if err != nil {
		t.Fatal(err)
	}
	byName, err := Load("big-little")
	if err != nil {
		t.Fatal(err)
	}
	if byFile.Hash() != byName.Hash() {
		t.Error("file and registry forms of the same scenario differ")
	}
	if _, err := Load("no-such-stack"); err == nil {
		t.Error("unknown name loaded")
	}
	if _, err := Load("no/such/file.json"); err == nil {
		t.Error("missing path loaded")
	}
}
