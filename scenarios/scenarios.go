// Package scenarios embeds and registers the shipped stack-scenario
// library: declarative floorplan.StackSpec documents that go beyond
// the paper's EXP-1..6 — heterogeneous big.LITTLE tiers, DRAM-on-logic
// stacking, a high-TSV-density logic-on-logic stack, and interlayer
// microfluidic cooling. Importing the package (typically blank, as the
// CLIs do) registers every library spec in the process-wide floorplan
// registry, so scenarios can reference them by name
// (`"stack": "big-little"`) locally and over the wire.
//
// Each file under this directory is a complete StackSpec (see
// scenarios/README.md for the schema); the package's init panics if
// any shipped file fails to parse, validate, or register, so a broken
// library cannot build.
package scenarios

import (
	"embed"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/floorplan"
)

//go:embed *.json
var files embed.FS

// Load resolves a CLI -stack argument: a path to a StackSpec JSON file
// (parsed strictly and validated), or the name of a registered spec —
// the shipped library plus anything registered at startup. A path that
// exists but fails to parse reports the parse error rather than
// falling through to a confusing "unknown stack".
func Load(arg string) (floorplan.StackSpec, error) {
	if data, err := os.ReadFile(arg); err == nil {
		spec, err := floorplan.ParseStackSpec(data)
		if err != nil {
			return floorplan.StackSpec{}, fmt.Errorf("%s: %w", arg, err)
		}
		return *spec, nil
	} else if strings.ContainsAny(arg, "/\\") || strings.HasSuffix(arg, ".json") {
		return floorplan.StackSpec{}, fmt.Errorf("reading stack spec %s: %w", arg, err)
	}
	if spec, ok := floorplan.LookupStackSpec(arg); ok {
		return spec, nil
	}
	return floorplan.StackSpec{}, fmt.Errorf("unknown stack %q: not a readable file and not a registered spec (registered: %s)",
		arg, strings.Join(floorplan.RegisteredStackSpecs(), ", "))
}

// Names lists the library's spec names, sorted.
func Names() []string {
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Spec returns a library spec by name.
func Spec(name string) (floorplan.StackSpec, bool) {
	s, ok := byName[name]
	return s, ok
}

var byName = map[string]floorplan.StackSpec{}

func init() {
	entries, err := files.ReadDir(".")
	if err != nil {
		panic(fmt.Sprintf("scenarios: reading embedded library: %v", err))
	}
	for _, e := range entries {
		data, err := files.ReadFile(e.Name())
		if err != nil {
			panic(fmt.Sprintf("scenarios: reading %s: %v", e.Name(), err))
		}
		spec, err := floorplan.ParseStackSpec(data)
		if err != nil {
			panic(fmt.Sprintf("scenarios: %s: %v", e.Name(), err))
		}
		if spec.Name == "" {
			panic(fmt.Sprintf("scenarios: %s declares no name", e.Name()))
		}
		if err := floorplan.RegisterStackSpec(*spec); err != nil {
			panic(fmt.Sprintf("scenarios: %s: %v", e.Name(), err))
		}
		byName[spec.Name] = *spec
	}
	if len(byName) == 0 {
		panic("scenarios: embedded library is empty")
	}
}
