// Package repro is a full reproduction of "Dynamic Thermal Management in
// 3D Multicore Architectures" (Coskun, Ayala, Atienza, Rosing, Leblebici —
// DATE 2009): a 3D-stacked multicore thermal simulation stack (floorplans,
// HotSpot-style RC thermal model with TSV-aware interlayer interfaces,
// UltraSPARC-T1-based power model with temperature-dependent leakage,
// multi-queue scheduler, synthetic Table-I workloads) together with every
// dynamic thermal management policy the paper evaluates — clock gating,
// three DVFS variants, thermal migration, Adaptive-Random — and the
// paper's contribution, the Adapt3D thermally-aware job allocator, plus
// hybrid combinations and DPM.
//
// This root package is a thin facade over the internal packages: it
// exposes the types needed to build systems, run simulations, compose
// policies, and regenerate the paper's tables and figures. See the
// runnable programs under examples/ and cmd/ for usage.
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/reliability"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Re-exported types: the stable public surface of the library.
type (
	// Experiment selects one of the paper's 3D configurations.
	Experiment = floorplan.Experiment
	// Stack is a 3D chip floorplan.
	Stack = floorplan.Stack
	// ThermalModel is the compact RC network of a stack plus package.
	ThermalModel = thermal.Model
	// ThermalParams are the physical constants of the thermal model.
	ThermalParams = thermal.Params
	// PowerModel is the chip power model.
	PowerModel = power.Model
	// Policy is a dynamic thermal management policy.
	Policy = policy.Policy
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of one run.
	SimResult = sim.Result
	// Benchmark is a Table I workload.
	Benchmark = workload.Benchmark
	// Job is one schedulable thread.
	Job = workload.Job
	// MetricsSummary is the paper's metric set for one run.
	MetricsSummary = metrics.Summary
	// Adapt3D is the paper's thermally-aware job allocator.
	Adapt3D = core.Adapt3D
	// Adapt3DConfig holds the Adapt3D constants.
	Adapt3DConfig = core.Config
	// FigureConfig controls figure regeneration sweeps.
	FigureConfig = exp.FigureConfig
	// ReliabilityReport is the per-core wear summary produced when
	// SimConfig.AssessReliability is set.
	ReliabilityReport = reliability.CoreReport
)

// The four experimental configurations (Figure 1).
const (
	EXP1 = floorplan.EXP1
	EXP2 = floorplan.EXP2
	EXP3 = floorplan.EXP3
	EXP4 = floorplan.EXP4
)

// BuildStack constructs the floorplan stack for an experiment with the
// paper's joint interlayer resistivity.
func BuildStack(e Experiment) (*Stack, error) { return floorplan.Build(e) }

// NewThermalModel builds the block-mode thermal model with the default
// (paper-calibrated) parameters.
func NewThermalModel(s *Stack) (*ThermalModel, error) {
	return thermal.NewBlockModel(s, thermal.DefaultParams())
}

// DefaultThermalParams returns the Table-II-plus-package parameter set.
func DefaultThermalParams() ThermalParams { return thermal.DefaultParams() }

// DefaultPowerModel returns the Section IV-B power model.
func DefaultPowerModel() PowerModel { return power.DefaultModel() }

// Benchmarks returns the Table I workload definitions.
func Benchmarks() []Benchmark { return workload.TableI() }

// BenchmarkByName looks up a Table I workload.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// GenerateJobs synthesizes a job trace for a benchmark (see
// workload.Generate for the model).
func GenerateJobs(b Benchmark, numCores int, durationS float64, seed int64) ([]Job, error) {
	return workload.Generate(workload.GenConfig{Bench: b, NumCores: numCores, DurationS: durationS, Seed: seed})
}

// NewAdapt3D builds the paper's policy for a stack with offline thermal
// indices derived from a steady-state solve.
func NewAdapt3D(s *Stack, seed int64) (*Adapt3D, error) {
	m, err := NewThermalModel(s)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return core.NewWithModel(s, m, cfg)
}

// NewDefaultPolicy returns the baseline OS load balancer.
func NewDefaultPolicy() Policy { return policy.NewDefault() }

// PolicySet builds the full 14-policy roster for a stack (the paper's
// 11 plus the lifetime-aware DVFS_Rel and the model-predictive
// MPC_Thermal/MPC_Rel pair).
func PolicySet(s *Stack, seed int64) ([]Policy, error) { return exp.BuildPolicySet(s, seed) }

// PolicyByName builds one policy from the roster by its Figure 3 name.
func PolicyByName(name string, s *Stack, seed int64) (Policy, error) {
	return exp.BuildPolicy(name, s, seed)
}

// PolicyNames lists the roster in the paper's Figure 3 order.
func PolicyNames() []string { return append([]string{}, exp.PolicyOrder...) }

// Run executes one simulation.
func Run(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// WriteAllFigures regenerates Tables I-II and Figures 2-6, writing the
// report tables to w.
func WriteAllFigures(w io.Writer, f FigureConfig) error {
	_, _, err := exp.WriteAllFigures(w, f)
	return err
}

// RenderStack draws an ASCII view of a stack's floorplan (Figure 1).
func RenderStack(s *Stack) string { return floorplan.RenderStack(s, 46, 12) }
