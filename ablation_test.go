// Ablation benchmarks for the design choices DESIGN.md calls out: the
// thermal-index source, the TSV density, the DPM timeout, the Adapt3D
// history window, and the thermal-model mode. Each runs a small
// controlled comparison per iteration and prints the conclusion once.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/floorplan"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ablationRun executes one EXP-3 run with a prepared policy.
func ablationRun(b *testing.B, pol policy.Policy, mutate func(*sim.Config)) *sim.Result {
	b.Helper()
	bench, err := workload.ByName("Web&DB")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Exp:       floorplan.EXP3,
		Policy:    pol,
		Bench:     bench,
		DurationS: benchDuration,
		Seed:      5,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationAlphaSource compares the three thermal-index sources
// for Adapt3D: steady-state solve (offline, the default), floorplan
// geometry, and runtime rank estimation. The paper reports offline and
// runtime selection behave equivalently.
func BenchmarkAblationAlphaSource(b *testing.B) {
	stack := floorplan.MustBuild(floorplan.EXP3)
	model, err := NewThermalModel(stack)
	if err != nil {
		b.Fatal(err)
	}
	build := map[string]func() (*core.Adapt3D, error){
		"steady-state": func() (*core.Adapt3D, error) {
			cfg := core.DefaultConfig()
			cfg.Seed = 5
			return core.NewWithModel(stack, model, cfg)
		},
		"geometric": func() (*core.Adapt3D, error) {
			cfg := core.DefaultConfig()
			cfg.Seed = 5
			cfg.Alpha = core.GeometricIndices(stack)
			return core.New(stack, cfg)
		},
		"online": func() (*core.Adapt3D, error) {
			cfg := core.DefaultConfig()
			cfg.Seed = 5
			cfg.OnlineWindow = 300
			return core.New(stack, cfg)
		},
	}
	results := make(map[string]float64)
	for i := 0; i < b.N; i++ {
		for name, mk := range build {
			pol, err := mk()
			if err != nil {
				b.Fatal(err)
			}
			r := ablationRun(b, pol, nil)
			results[name] = r.Metrics.HotSpotPct
		}
	}
	printFigure("Ablation: Adapt3D thermal-index source (hot-spot % on EXP-3)", func(w io.Writer) error {
		for _, name := range []string{"steady-state", "geometric", "online"} {
			fmt.Fprintf(w, "  %-12s %6.2f%%\n", name, results[name])
		}
		return nil
	})
}

// BenchmarkAblationTSVDensity sweeps the joint interlayer resistivity
// (TSV count) and reports its effect on the hot-spot metric — the
// paper's observation that even 1-2% density changes the profile by only
// a few degrees.
func BenchmarkAblationTSVDensity(b *testing.B) {
	type point struct {
		vias float64
		hot  float64
		peak float64
	}
	var pts []point
	for i := 0; i < b.N; i++ {
		pts = pts[:0]
		for _, rho := range []float64{0.25, 0.23, 0.20, 0.15} {
			bench, _ := workload.ByName("Web&DB")
			pol := policy.NewDefault()
			r, err := sim.Run(sim.Config{
				Exp:                 floorplan.EXP3,
				JointResistivityMKW: rho,
				Policy:              pol,
				Bench:               bench,
				DurationS:           benchDuration,
				Seed:                5,
			})
			if err != nil {
				b.Fatal(err)
			}
			pts = append(pts, point{vias: rho, hot: r.Metrics.HotSpotPct, peak: r.Metrics.MaxTempC})
		}
	}
	printFigure("Ablation: joint interlayer resistivity (EXP-3, Default)", func(w io.Writer) error {
		for _, p := range pts {
			fmt.Fprintf(w, "  rho=%.2f mK/W  hot=%6.2f%%  peak=%.1f °C\n", p.vias, p.hot, p.peak)
		}
		return nil
	})
}

// BenchmarkAblationDPMTimeout sweeps the fixed-timeout constant.
func BenchmarkAblationDPMTimeout(b *testing.B) {
	type point struct {
		timeout float64
		hot     float64
		powerW  float64
		sleeps  int
	}
	var pts []point
	for i := 0; i < b.N; i++ {
		pts = pts[:0]
		for _, to := range []float64{0.1, 0.3, 1.0, 3.0} {
			r := ablationRun(b, policy.NewDefault(), func(c *sim.Config) {
				c.UseDPM = true
				c.DPM = policy.DPM{TimeoutS: to}
			})
			pts = append(pts, point{timeout: to, hot: r.Metrics.HotSpotPct, powerW: r.AvgPowerW, sleeps: r.SleepEntries})
		}
	}
	printFigure("Ablation: DPM timeout (EXP-3, Default)", func(w io.Writer) error {
		for _, p := range pts {
			fmt.Fprintf(w, "  timeout=%.1fs  hot=%6.2f%%  power=%.1fW  sleeps=%d\n", p.timeout, p.hot, p.powerW, p.sleeps)
		}
		return nil
	})
}

// BenchmarkAblationHistoryWindow sweeps Adapt3D's temperature history
// length (the paper uses 10 samples and notes other values can be set).
func BenchmarkAblationHistoryWindow(b *testing.B) {
	stack := floorplan.MustBuild(floorplan.EXP3)
	model, err := NewThermalModel(stack)
	if err != nil {
		b.Fatal(err)
	}
	type point struct {
		window int
		hot    float64
	}
	var pts []point
	for i := 0; i < b.N; i++ {
		pts = pts[:0]
		for _, win := range []int{3, 10, 30, 100} {
			cfg := core.DefaultConfig()
			cfg.Seed = 5
			cfg.Window = win
			pol, err := core.NewWithModel(stack, model, cfg)
			if err != nil {
				b.Fatal(err)
			}
			r := ablationRun(b, pol, nil)
			pts = append(pts, point{window: win, hot: r.Metrics.HotSpotPct})
		}
	}
	printFigure("Ablation: Adapt3D history window (EXP-3)", func(w io.Writer) error {
		for _, p := range pts {
			fmt.Fprintf(w, "  window=%3d  hot=%6.2f%%\n", p.window, p.hot)
		}
		return nil
	})
}

// BenchmarkAblationThermalMode compares block-mode against grid-mode
// thermal modelling in the full loop.
func BenchmarkAblationThermalMode(b *testing.B) {
	var blockHot, gridHot, blockAvg, gridAvg float64
	for i := 0; i < b.N; i++ {
		rb := ablationRun(b, policy.NewDefault(), nil)
		rg := ablationRun(b, policy.NewDefault(), func(c *sim.Config) {
			c.GridRows, c.GridCols = 8, 8
		})
		blockHot, gridHot = rb.Metrics.HotSpotPct, rg.Metrics.HotSpotPct
		blockAvg, gridAvg = rb.Metrics.AvgCoreTempC, rg.Metrics.AvgCoreTempC
	}
	printFigure("Ablation: thermal model mode (EXP-3, Default)", func(w io.Writer) error {
		fmt.Fprintf(w, "  block mode: hot=%6.2f%% avg=%.1f °C\n", blockHot, blockAvg)
		fmt.Fprintf(w, "  grid  8x8 : hot=%6.2f%% avg=%.1f °C\n", gridHot, gridAvg)
		return nil
	})
}

// BenchmarkAblationExp3Exp4 contrasts the separated (EXP-3) and mixed
// (EXP-4) 4-tier designs under the full policy roster — the design
// trade-off Section IV-A motivates.
func BenchmarkAblationExp3Exp4(b *testing.B) {
	var m *exp.Matrix
	for i := 0; i < b.N; i++ {
		var err error
		m, err = exp.Run(exp.MatrixConfig{
			Exps:       []floorplan.Experiment{floorplan.EXP3, floorplan.EXP4},
			Benchmarks: []string{"Web&DB"},
			Policies:   []string{"Default", "Adapt3D", "Adapt3D&DVFS_TT"},
			DurationS:  benchDuration,
			Seed:       5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	printFigure("Ablation: separated vs mixed 4-tier design", renderMatrixHotspots(m, "hot"))
}
