#!/usr/bin/env sh
# Convert `go test -bench` output (stdin) to a JSON benchmark report
# (stdout). Used by CI to produce BENCH_ci.json and to (re)generate the
# committed baseline:
#
#   go test -run xxx -bench 'SteadyState|Transient|Sweep' -benchtime 1x -count 1 . \
#     | sh .github/bench_to_json.sh > .github/bench_baseline.json
awk '
BEGIN { printf "{\n  \"benchmarks\": [" ; n = 0 }
$1 ~ /^Benchmark/ && $NF == "ns/op" {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s}", name, $(NF-1)
}
END { printf "\n  ]\n}\n" }
'
