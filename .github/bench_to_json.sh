#!/usr/bin/env sh
# Convert `go test -bench` output (stdin) to a JSON benchmark report
# (stdout). With -benchmem the per-op allocation columns are captured
# alongside wall time, so CI tracks allocs/op regressions like time
# regressions. Used by CI to produce BENCH_ci.json and to (re)generate
# the committed baseline:
#
#   go test -run xxx -bench 'SteadyState|Transient|Sweep|Fig|RunTick|SimulatedSecond|SolvePanel|SnapshotFork|MPCDecision' \
#     -benchtime 1x -benchmem -count 1 . ./internal/sim ./internal/linalg \
#     | sh .github/bench_to_json.sh > .github/bench_baseline.json
#
# (./internal/sim carries BenchmarkRunTick and ./internal/linalg
# BenchmarkSolvePanel; omitting them regenerates a baseline without
# the allocation-free per-tick and panel-solve gates.)
awk '
BEGIN { printf "{\n  \"benchmarks\": [" ; n = 0 }
$1 ~ /^Benchmark/ && $4 == "ns/op" {
  name = $1
  sub(/-[0-9]+$/, "", name)
  bytes = "" ; allocs = ""
  for (i = 4; i < NF; i++) {
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s", name, $3
  if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  printf "}"
}
END { printf "\n  ]\n}\n" }
'
