#!/usr/bin/env sh
# End-to-end serving-layer test: boots dtmserved on a random port and
# proves the HTTP path cannot drift from the in-process path.
#
#   1. A small EXP1/EXP2 sweep streamed over HTTP is byte-identical to
#      the same spec run directly (dtmsweep -canonical), both through
#      the dtmsweep -remote client and through raw curl.
#   2. Repeating the identical request is served entirely from the
#      result cache: the hit counter increments and not one new
#      simulated tick is recorded.
#   3. SSE framing delivers every record plus a terminal done event.
#   3b. An interactive session — frames streamed live, events injected
#      mid-run — replays from its event log byte-identically (plain
#      and reliability-enabled), checkpoint seeks serve the tail only,
#      and the session metrics account for every engine.
#   4. SIGTERM drains gracefully (exit 0), closing a live session
#      mid-stream with a terminal closed event.
#   5. A 3-node cluster (booted on ephemeral ports via -peers-file,
#      swept via dtmsweep -remote a,b,c) streams byte-identically to a
#      direct run; a follow-up sweep against ONE node is served from
#      the composed cluster cache (peer-fill, zero new ticks); with a
#      node killed, the cluster stream stays byte-identical and the
#      rerouted/retry counters move.
#
# Sub-rounds of 2 additionally pin reliability streams (2b),
# model-predictive policies (2c), and declarative -stack sweeps with
# inline specs (2d) byte-identical across the HTTP path. Sub-round 5e
# replays the drained session's log on a cluster node and proves the
# closed live stream is a byte prefix of the full replay.
#
# Run from the repo root: sh .github/e2e_served.sh
# Needs: go, curl, jq.
set -eu

WORKDIR=$(mktemp -d)
SERVER_PID=""
NODE_PIDS=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	for p in $NODE_PIDS; do kill "$p" 2>/dev/null || true; done
	rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

fail() {
	echo "e2e: FAIL: $*" >&2
	[ -f "$WORKDIR/server.log" ] && sed 's/^/e2e: server: /' "$WORKDIR/server.log" >&2
	exit 1
}

echo "e2e: building binaries"
go build -o "$WORKDIR/dtmserved" ./cmd/dtmserved
go build -o "$WORKDIR/dtmsweep" ./cmd/dtmsweep

# The sweep under test: 2 scenarios x 2 policies x 1 benchmark, 2
# simulated seconds. Small enough for CI, big enough to exercise the
# pool, the cache, and multi-record streaming.
SWEEP_ARGS="-exps 1,2 -policies Default,Adapt3D -benchmarks Web-med -duration 2 -seed 1"
JOBS=4

"$WORKDIR/dtmserved" -addr 127.0.0.1:0 -addr-file "$WORKDIR/addr.txt" -workers 4 \
	>"$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

i=0
while [ ! -s "$WORKDIR/addr.txt" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "server never wrote its address file"
	kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
	sleep 0.1
done
ADDR=$(cat "$WORKDIR/addr.txt")
echo "e2e: dtmserved on $ADDR (pid $SERVER_PID)"

curl -sf "http://$ADDR/healthz" >/dev/null || fail "healthz not responding"

metric() {
	curl -sf "http://$ADDR/metrics" | jq -e ".$1" || fail "metric $1 unreadable"
}

echo "e2e: 1/5 served stream vs direct run"
"$WORKDIR/dtmsweep" -out jsonl -canonical $SWEEP_ARGS \
	>"$WORKDIR/direct.jsonl" 2>/dev/null || fail "direct sweep failed"
"$WORKDIR/dtmsweep" -out jsonl -remote "http://$ADDR" $SWEEP_ARGS \
	>"$WORKDIR/remote.jsonl" 2>/dev/null || fail "remote sweep failed"
cmp -s "$WORKDIR/direct.jsonl" "$WORKDIR/remote.jsonl" ||
	fail "served records differ from the direct run (serving-layer drift)"
[ "$(wc -l <"$WORKDIR/remote.jsonl")" -eq "$JOBS" ] ||
	fail "expected $JOBS records, got $(wc -l <"$WORKDIR/remote.jsonl")"

# The same spec as a raw curl client (the JSON body mirrors the flags
# above) must produce the same bytes again.
BODY='{"spec":{"scenarios":[{"exp":"EXP-1"},{"exp":"EXP-2"}],"policies":["Default","Adapt3D"],"benchmarks":["Web-med"],"durations_s":[2],"seed":1}}'
curl -sf -d "$BODY" "http://$ADDR/v1/sweep" >"$WORKDIR/curl.jsonl" || fail "curl sweep failed"
cmp -s "$WORKDIR/direct.jsonl" "$WORKDIR/curl.jsonl" ||
	fail "curl-streamed records differ from the direct run"

echo "e2e: 2/5 repeated request is served from the result cache"
HITS0=$(metric cache_hits_total)
TICKS0=$(metric sim_ticks_total)
COMPLETED0=$(metric jobs_completed_total)
[ "$TICKS0" -gt 0 ] || fail "server recorded no simulated ticks for the first sweep"
"$WORKDIR/dtmsweep" -out jsonl -remote "http://$ADDR" $SWEEP_ARGS \
	>"$WORKDIR/remote2.jsonl" 2>/dev/null || fail "repeat remote sweep failed"
cmp -s "$WORKDIR/remote.jsonl" "$WORKDIR/remote2.jsonl" ||
	fail "cached replay differs from the first stream"
HITS1=$(metric cache_hits_total)
TICKS1=$(metric sim_ticks_total)
COMPLETED1=$(metric jobs_completed_total)
[ "$HITS1" -eq $((HITS0 + JOBS)) ] ||
	fail "cache hits went $HITS0 -> $HITS1, want +$JOBS"
[ "$TICKS1" -eq "$TICKS0" ] ||
	fail "repeat request simulated $((TICKS1 - TICKS0)) new ticks, want 0"
[ "$COMPLETED1" -eq "$COMPLETED0" ] ||
	fail "repeat request ran $((COMPLETED1 - COMPLETED0)) new jobs, want 0"

echo "e2e: 2b/5 reliability-enabled sweep is byte-identical and cache-isolated"
# Reliability flips the job identity (|rel keys), so these runs must
# NOT be served from the plain sweep's cache entries — and the rel_*
# wear fields must survive the HTTP path byte-for-byte.
RELJOBS0=$(metric reliability_jobs_total)
"$WORKDIR/dtmsweep" -out jsonl -canonical -reliability $SWEEP_ARGS \
	>"$WORKDIR/direct_rel.jsonl" 2>/dev/null || fail "direct reliability sweep failed"
"$WORKDIR/dtmsweep" -out jsonl -remote "http://$ADDR" -reliability $SWEEP_ARGS \
	>"$WORKDIR/remote_rel.jsonl" 2>/dev/null || fail "remote reliability sweep failed"
cmp -s "$WORKDIR/direct_rel.jsonl" "$WORKDIR/remote_rel.jsonl" ||
	fail "served reliability records differ from the direct run"
grep -q '"rel_worst_cycle_damage"' "$WORKDIR/remote_rel.jsonl" ||
	fail "reliability records carry no rel_* fields"
grep -q '"rel_mttf"' "$WORKDIR/remote_rel.jsonl" ||
	fail "reliability records carry no rel_mttf field"
RELJOBS1=$(metric reliability_jobs_total)
[ "$RELJOBS1" -eq $((RELJOBS0 + JOBS)) ] ||
	fail "reliability_jobs_total went $RELJOBS0 -> $RELJOBS1, want +$JOBS"

echo "e2e: 2c/5 model-predictive sweep is byte-identical served vs local"
# The MPC policies drive snapshot/fork rollouts inside every decision
# epoch — parallel lane evaluation included — so this round proves the
# planning path stays deterministic across processes: the served stream
# must match the direct run byte for byte.
MPC_ARGS="-exps 2 -policies DVFS_TT,MPC_Thermal,MPC_Rel -benchmarks Web-med -duration 2 -seed 1"
"$WORKDIR/dtmsweep" -out jsonl -canonical $MPC_ARGS \
	>"$WORKDIR/direct_mpc.jsonl" 2>/dev/null || fail "direct MPC sweep failed"
"$WORKDIR/dtmsweep" -out jsonl -remote "http://$ADDR" $MPC_ARGS \
	>"$WORKDIR/remote_mpc.jsonl" 2>/dev/null || fail "remote MPC sweep failed"
cmp -s "$WORKDIR/direct_mpc.jsonl" "$WORKDIR/remote_mpc.jsonl" ||
	fail "served MPC records differ from the direct run (nondeterministic planning?)"
# 3 requested policies + the implicit Default baseline the sweep
# normalizes performance against.
[ "$(wc -l <"$WORKDIR/remote_mpc.jsonl")" -eq 4 ] ||
	fail "expected 4 MPC-round records, got $(wc -l <"$WORKDIR/remote_mpc.jsonl")"

echo "e2e: 2d/5 declarative-stack sweep is byte-identical served vs local"
# Custom stacks travel as inline StackSpec JSON in the request body
# (dtmsweep -stack always inlines), so the server needs no registry
# entry — and the spec's content hash keys the jobs, so the stream
# must still be byte-identical to the direct run and never collide
# with the builtin EXP cache entries exercised above.
STACK_ARGS="-stack scenarios/big-little.json,scenarios/microfluidic.json -policies Default,Adapt3D -benchmarks Web-med -duration 2 -seed 1"
"$WORKDIR/dtmsweep" -out jsonl -canonical $STACK_ARGS \
	>"$WORKDIR/direct_stack.jsonl" 2>/dev/null || fail "direct stack sweep failed"
"$WORKDIR/dtmsweep" -out jsonl -remote "http://$ADDR" $STACK_ARGS \
	>"$WORKDIR/remote_stack.jsonl" 2>/dev/null || fail "remote stack sweep failed"
cmp -s "$WORKDIR/direct_stack.jsonl" "$WORKDIR/remote_stack.jsonl" ||
	fail "served stack records differ from the direct run"
[ "$(wc -l <"$WORKDIR/remote_stack.jsonl")" -eq 4 ] ||
	fail "expected 4 stack-round records, got $(wc -l <"$WORKDIR/remote_stack.jsonl")"
grep -q '"scenario":"stack:big-little#' "$WORKDIR/remote_stack.jsonl" ||
	fail "stack records do not carry the stack:name#hash scenario identity"

echo "e2e: 3/5 SSE framing"
curl -sf -H 'Accept: text/event-stream' -d "$BODY" "http://$ADDR/v1/sweep" >"$WORKDIR/sse.txt" ||
	fail "SSE sweep failed"
[ "$(grep -c '^event: record$' "$WORKDIR/sse.txt")" -eq "$JOBS" ] ||
	fail "SSE stream lost records"
grep -q '^event: done$' "$WORKDIR/sse.txt" || fail "SSE stream has no done event"

echo "e2e: 3b/5 interactive session: live stream == replayed event log"
# Open a paced 20-tick session, watch it over SSE, and steer it
# mid-run (a TSV failure, then a policy swap). The stream must end
# with a done terminal, and replaying the recorded event log through
# POST /v1/session/replay must reproduce the live stream byte for
# byte — the session-layer determinism contract.
SBODY='{"job":{"scenario":{"exp":"EXP-2"},"policy":"DVFS_TT","bench":"Web-med","seed":1,"duration_s":2},"cadence_ticks":1,"ticks_per_sec":10}'
SID=$(curl -sf -d "$SBODY" "http://$ADDR/v1/session" | jq -re .id) || fail "session open failed"
curl -sfN "http://$ADDR/v1/session/$SID/stream" >"$WORKDIR/live.sse" &
STREAM_PID=$!
sleep 0.6
curl -sf -d '{"type":"fail_tsv","factor":4}' \
	"http://$ADDR/v1/session/$SID/event" >/dev/null || fail "fail_tsv event rejected mid-run"
sleep 0.5
curl -sf -d '{"type":"set_policy","policy":"Adapt3D"}' \
	"http://$ADDR/v1/session/$SID/event" >/dev/null || fail "set_policy event rejected mid-run"
wait "$STREAM_PID" || fail "session stream client failed"
grep -q '^event: done$' "$WORKDIR/live.sse" || fail "session stream has no done terminal"
[ "$(grep -c '^event: frame$' "$WORKDIR/live.sse")" -eq 20 ] ||
	fail "session streamed $(grep -c '^event: frame$' "$WORKDIR/live.sse") frames, want 20"
curl -sf "http://$ADDR/v1/session/$SID/log" >"$WORKDIR/session.ndjson" || fail "session log fetch failed"
[ "$(wc -l <"$WORKDIR/session.ndjson")" -eq 3 ] ||
	fail "session log holds $(wc -l <"$WORKDIR/session.ndjson") records, want header + 2 events"
curl -sf --data-binary @"$WORKDIR/session.ndjson" \
	"http://$ADDR/v1/session/replay" >"$WORKDIR/replay.sse" || fail "session replay failed"
cmp -s "$WORKDIR/live.sse" "$WORKDIR/replay.sse" ||
	fail "replayed session differs from the live stream (session determinism drift)"

# Checkpoint seek: replay-from-tick-10 must serve the back half only.
curl -sf "http://$ADDR/v1/session/$SID/replay?from_tick=10" >"$WORKDIR/seek.sse" ||
	fail "session seek failed"
grep -q '"tick":10,' "$WORKDIR/seek.sse" || fail "seek stream is missing tick 10"
! grep -q '"tick":5,' "$WORKDIR/seek.sse" || fail "seek from tick 10 streamed tick 5"
grep -q '^event: done$' "$WORKDIR/seek.sse" || fail "seek stream has no done terminal"

# Reliability variant: the wear tracker rides the session, a mid-run
# TSV failure lands in the log, and the replay still matches.
RBODY='{"job":{"scenario":{"exp":"EXP-2"},"policy":"DVFS_TT","bench":"Web-med","seed":1,"duration_s":2,"reliability":true},"cadence_ticks":1,"ticks_per_sec":10}'
RSID=$(curl -sf -d "$RBODY" "http://$ADDR/v1/session" | jq -re .id) || fail "reliability session open failed"
curl -sfN "http://$ADDR/v1/session/$RSID/stream" >"$WORKDIR/live_rel.sse" &
STREAM_PID=$!
sleep 0.6
curl -sf -d '{"type":"fail_tsv","factor":4}' \
	"http://$ADDR/v1/session/$RSID/event" >/dev/null || fail "reliability fail_tsv rejected mid-run"
wait "$STREAM_PID" || fail "reliability session stream client failed"
grep -q '"rel_worst_cycle_damage"' "$WORKDIR/live_rel.sse" ||
	fail "reliability session's done record carries no rel_* fields"
curl -sf "http://$ADDR/v1/session/$RSID/log" >"$WORKDIR/session_rel.ndjson" ||
	fail "reliability session log fetch failed"
curl -sf --data-binary @"$WORKDIR/session_rel.ndjson" \
	"http://$ADDR/v1/session/replay" >"$WORKDIR/replay_rel.sse" || fail "reliability replay failed"
cmp -s "$WORKDIR/live_rel.sse" "$WORKDIR/replay_rel.sse" ||
	fail "replayed reliability session differs from the live stream"

# Session accounting: both runs finished, so no engine may still be
# held; 2 opens, 3 applied events, 3 replay streams (2 full + 1 seek).
[ "$(metric session_engines_live)" -eq 0 ] ||
	fail "finished sessions still hold $(metric session_engines_live) engines (leak)"
[ "$(metric sessions_opened_total)" -eq 2 ] ||
	fail "sessions_opened_total is $(metric sessions_opened_total), want 2"
[ "$(metric session_events_total)" -eq 3 ] ||
	fail "session_events_total is $(metric session_events_total), want 3"
[ "$(metric session_replays_total)" -eq 3 ] ||
	fail "session_replays_total is $(metric session_replays_total), want 3"

echo "e2e: 4/5 graceful drain on SIGTERM closes a live session"
# A slow session (600 ticks at 5/s) is mid-stream when SIGTERM lands:
# its stream must end with a closed terminal naming the drain, and the
# server must still exit 0. Its (event-free) log is snapshotted first
# so round 5 can prove the closed stream is a byte prefix of a full
# replay on another node.
DBODY='{"job":{"scenario":{"exp":"EXP-1"},"policy":"Default","bench":"gzip","seed":1,"duration_s":60},"cadence_ticks":1,"ticks_per_sec":5}'
DSID=$(curl -sf -d "$DBODY" "http://$ADDR/v1/session" | jq -re .id) || fail "drain session open failed"
curl -sN "http://$ADDR/v1/session/$DSID/stream" >"$WORKDIR/drain.sse" &
DRAIN_PID=$!
sleep 1
curl -sf "http://$ADDR/v1/session/$DSID/log" >"$WORKDIR/drain.ndjson" ||
	fail "drain session log fetch failed"
kill -TERM "$SERVER_PID"
wait "$DRAIN_PID" || fail "drained session stream client failed"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || fail "server exited $STATUS on SIGTERM, want 0"
grep -q "stopped" "$WORKDIR/server.log" || fail "server log records no clean stop"
grep -q '^event: closed$' "$WORKDIR/drain.sse" ||
	fail "drained session stream has no closed terminal"
grep -q '"reason":"draining"' "$WORKDIR/drain.sse" ||
	fail "closed terminal does not name the drain"
grep -q '^event: frame$' "$WORKDIR/drain.sse" ||
	fail "drained session streamed no frames before closing"

echo "e2e: 5/5 three-node cluster"
# Boot 3 nodes on ephemeral ports. Each blocks between binding (it
# writes -addr-file) and serving (it polls -peers-file), so the script
# can collect the addresses and publish the roster before any node
# answers traffic. 16 jobs (4 replicates) keep the per-node partitions
# non-trivial whatever the rendezvous hash does with the random ports.
CLUSTER_ARGS="$SWEEP_ARGS -replicates 4"
CJOBS=16
for n in 1 2 3; do
	"$WORKDIR/dtmserved" -addr 127.0.0.1:0 -addr-file "$WORKDIR/addr$n.txt" \
		-peers-file "$WORKDIR/peers.txt" -workers 2 >"$WORKDIR/node$n.log" 2>&1 &
	NODE_PIDS="$NODE_PIDS $!"
done
for n in 1 2 3; do
	i=0
	while [ ! -s "$WORKDIR/addr$n.txt" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "cluster node $n never wrote its address file"
		sleep 0.1
	done
done
A1=$(cat "$WORKDIR/addr1.txt")
A2=$(cat "$WORKDIR/addr2.txt")
A3=$(cat "$WORKDIR/addr3.txt")
printf 'http://%s,http://%s,http://%s\n' "$A1" "$A2" "$A3" >"$WORKDIR/peers.tmp"
mv "$WORKDIR/peers.tmp" "$WORKDIR/peers.txt"
CLUSTER="http://$A1,http://$A2,http://$A3"
for a in "$A1" "$A2" "$A3"; do
	i=0
	until curl -sf "http://$a/healthz" >/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "cluster node $a never became healthy"
		sleep 0.1
	done
done
echo "e2e: cluster up: $CLUSTER"

nmetric() {
	curl -sf "http://$1/metrics" | jq -e ".$2" || fail "metric $2 unreadable on $1"
}
summetric() {
	_s=0
	for _a in "$A1" "$A2" "$A3"; do
		_s=$((_s + $(nmetric "$_a" "$1")))
	done
	echo "$_s"
}

# 5a: the router's merged stream is byte-identical to a direct run.
"$WORKDIR/dtmsweep" -out jsonl -canonical $CLUSTER_ARGS \
	>"$WORKDIR/direct_cluster.jsonl" 2>/dev/null || fail "direct cluster-round sweep failed"
"$WORKDIR/dtmsweep" -out jsonl -remote "$CLUSTER" $CLUSTER_ARGS \
	>"$WORKDIR/cluster.jsonl" 2>/dev/null || fail "cluster sweep failed"
cmp -s "$WORKDIR/direct_cluster.jsonl" "$WORKDIR/cluster.jsonl" ||
	fail "3-node cluster stream differs from the direct run"
[ "$(wc -l <"$WORKDIR/cluster.jsonl")" -eq "$CJOBS" ] ||
	fail "expected $CJOBS cluster records, got $(wc -l <"$WORKDIR/cluster.jsonl")"

# 5b: the caches compose. After 5a every node cached exactly its own
# partition; repeating the sweep against ONE node must be served from
# the cluster-wide cache — peer-fill for the other nodes' keys, not
# one new simulated tick anywhere.
TICKS_C0=$(summetric sim_ticks_total)
PF0=$(nmetric "$A1" peer_fills_total)
HITS_C0=$(summetric cache_hits_total)
"$WORKDIR/dtmsweep" -out jsonl -remote "http://$A1" $CLUSTER_ARGS \
	>"$WORKDIR/single.jsonl" 2>/dev/null || fail "single-node cluster sweep failed"
cmp -s "$WORKDIR/direct_cluster.jsonl" "$WORKDIR/single.jsonl" ||
	fail "single-node sweep through the cluster cache differs from the direct run"
TICKS_C1=$(summetric sim_ticks_total)
[ "$TICKS_C1" -eq "$TICKS_C0" ] ||
	fail "cluster-cached sweep simulated $((TICKS_C1 - TICKS_C0)) new ticks, want 0"
PF1=$(nmetric "$A1" peer_fills_total)
[ "$PF1" -gt "$PF0" ] || fail "peer_fills_total did not move on the queried node"
HITS_C1=$(summetric cache_hits_total)
[ $((HITS_C1 - HITS_C0)) -ge "$CJOBS" ] ||
	fail "cluster-wide cache hits went +$((HITS_C1 - HITS_C0)), want +$CJOBS (every key a hit on its owner)"

# 5c: kill one node; the router must fail over to each dead-owned
# key's rendezvous runner-up and still merge the canonical stream. A
# fresh seed keeps every job uncached so the failover actually routes
# work.
KILLED_PID=${NODE_PIDS##* }
kill -9 "$KILLED_PID" 2>/dev/null || true
SEED2_ARGS="-exps 1,2 -policies Default,Adapt3D -benchmarks Web-med -duration 2 -seed 2 -replicates 4"
"$WORKDIR/dtmsweep" -out jsonl -canonical $SEED2_ARGS \
	>"$WORKDIR/direct_seed2.jsonl" 2>/dev/null || fail "direct seed-2 sweep failed"
"$WORKDIR/dtmsweep" -out jsonl -remote "$CLUSTER" $SEED2_ARGS \
	>"$WORKDIR/cluster_seed2.jsonl" 2>/dev/null || fail "cluster sweep with a dead node failed"
cmp -s "$WORKDIR/direct_seed2.jsonl" "$WORKDIR/cluster_seed2.jsonl" ||
	fail "cluster stream with a dead node differs from the direct run"

# 5d: server-side peer-fill around the dead node. Another fresh seed
# against one surviving node: keys owned by the live peer peer-fill
# (counter up), keys owned by the dead peer retry then re-route to a
# local run (both failure counters up) — and the records still match.
PF_A0=$(nmetric "$A1" peer_fills_total)
RR_A0=$(nmetric "$A1" rerouted_jobs_total)
BR_A0=$(nmetric "$A1" backend_retries_total)
SEED3_ARGS="-exps 1,2 -policies Default,Adapt3D -benchmarks Web-med -duration 2 -seed 3 -replicates 4"
"$WORKDIR/dtmsweep" -out jsonl -canonical $SEED3_ARGS \
	>"$WORKDIR/direct_seed3.jsonl" 2>/dev/null || fail "direct seed-3 sweep failed"
"$WORKDIR/dtmsweep" -out jsonl -remote "http://$A1" $SEED3_ARGS \
	>"$WORKDIR/single_seed3.jsonl" 2>/dev/null || fail "single-node sweep with a dead peer failed"
cmp -s "$WORKDIR/direct_seed3.jsonl" "$WORKDIR/single_seed3.jsonl" ||
	fail "records with a dead peer differ from the direct run"
PF_A1=$(nmetric "$A1" peer_fills_total)
RR_A1=$(nmetric "$A1" rerouted_jobs_total)
BR_A1=$(nmetric "$A1" backend_retries_total)
[ "$PF_A1" -gt "$PF_A0" ] || fail "peer_fills_total did not move for live-peer-owned keys"
[ "$RR_A1" -gt "$RR_A0" ] || fail "rerouted_jobs_total did not move for dead-peer-owned keys"
[ "$BR_A1" -gt "$BR_A0" ] || fail "backend_retries_total did not move for dead-peer-owned keys"

# 5e: session logs are portable. The log snapshotted from the drained
# session in round 4 replays on a different node, and the live stream
# the drained client saw — minus its closed terminal — is a byte
# prefix of that full replay: the drain lost the tail, never the
# truth.
curl -sf --data-binary @"$WORKDIR/drain.ndjson" \
	"http://$A1/v1/session/replay" >"$WORKDIR/drain_replay.sse" ||
	fail "drained session log does not replay on another node"
grep -q '^event: done$' "$WORKDIR/drain_replay.sse" ||
	fail "cross-node replay of the drained log has no done terminal"
sed '/^event: closed$/,$d' "$WORKDIR/drain.sse" >"$WORKDIR/drain_prefix.sse"
[ -s "$WORKDIR/drain_prefix.sse" ] || fail "drained session captured no bytes before closing"
PFXLEN=$(wc -c <"$WORKDIR/drain_prefix.sse")
head -c "$PFXLEN" "$WORKDIR/drain_replay.sse" | cmp -s - "$WORKDIR/drain_prefix.sse" ||
	fail "drained session stream is not a prefix of its replay"

echo "e2e: PASS"
