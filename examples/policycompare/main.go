// Policy comparison: the scenario behind the paper's Figure 3. A server
// consolidates web and database load onto a 4-tier 3D stack (EXP-3); we
// race all fourteen management policies on the identical job trace and
// report hot-spot residency, performance, and energy.
package main

import (
	"fmt"
	"log"
	"os"

	repro "repro"

	"repro/internal/metrics"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	const durationS = 300
	stack, err := repro.BuildStack(repro.EXP3)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := repro.BenchmarkByName("Web&DB")
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := repro.GenerateJobs(bench, stack.NumCores(), durationS, 7)
	if err != nil {
		log.Fatal(err)
	}

	table := report.NewTable(
		fmt.Sprintf("All policies on %v, %s, %d s (identical trace)", repro.EXP3, bench.Name, durationS),
		"Policy", "Hot%", "Grad%", "Cyc%", "PeakC", "Perf", "AvgW")

	var baseResponse float64
	for _, name := range repro.PolicyNames() {
		pol, err := repro.PolicyByName(name, stack, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Run(repro.SimConfig{
			Exp:       repro.EXP3,
			Policy:    pol,
			Jobs:      jobs,
			DurationS: durationS,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if name == "Default" {
			baseResponse = res.Sched.MeanResponseS
		}
		table.AddRow(name,
			res.Metrics.HotSpotPct,
			res.Metrics.GradientPct,
			res.Metrics.CyclePct,
			res.Metrics.MaxTempC,
			metrics.NormalizedPerformance(baseResponse, res.Sched.MeanResponseS),
			res.AvgPowerW)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
