// Quickstart: build a 2-layer 3D stack, run the paper's Adapt3D policy
// against the OS default load balancer on a medium web-serving workload,
// and compare the thermal outcomes.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	log.SetFlags(0)

	stack, err := repro.BuildStack(repro.EXP2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(repro.RenderStack(stack))

	bench, err := repro.BenchmarkByName("Web-med")
	if err != nil {
		log.Fatal(err)
	}
	// Both policies replay the exact same job trace for a fair race.
	jobs, err := repro.GenerateJobs(bench, stack.NumCores(), 300, 42)
	if err != nil {
		log.Fatal(err)
	}

	adapt, err := repro.NewAdapt3D(stack, 42)
	if err != nil {
		log.Fatal(err)
	}
	for _, pol := range []repro.Policy{repro.NewDefaultPolicy(), adapt} {
		res, err := repro.Run(repro.SimConfig{
			Exp:       repro.EXP2,
			Policy:    pol,
			Jobs:      jobs,
			DurationS: 300,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s: hot spots %.2f%%, peak %.1f °C, avg core %.1f °C, mean response %.3f s\n",
			res.PolicyName, res.Metrics.HotSpotPct, res.Metrics.MaxTempC,
			res.Metrics.AvgCoreTempC, res.Sched.MeanResponseS)
	}
}
