// Trade-off study: the interaction the paper analyzes in Figures 4-6 —
// how dynamic power management (DPM) changes the thermal picture for
// scheduling-based versus DVFS-based policies, and what each costs in
// performance and energy. Runs the Default, DVFS_TT, Adapt3D, and hybrid
// policies on EXP-1 and EXP-3 with and without DPM.
package main

import (
	"fmt"
	"log"
	"os"

	repro "repro"

	"repro/internal/metrics"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	const durationS = 300
	policies := []string{"Default", "DVFS_TT", "Adapt3D", "Adapt3D&DVFS_TT"}
	table := report.NewTable(
		"DPM / DVFS / scheduling interaction (paper Figs. 4-6 scenario)",
		"Config", "Policy", "DPM", "Hot%", "Cyc%", "Perf", "AvgW", "Sleeps")

	for _, e := range []repro.Experiment{repro.EXP1, repro.EXP3} {
		stack, err := repro.BuildStack(e)
		if err != nil {
			log.Fatal(err)
		}
		bench, err := repro.BenchmarkByName("Web&DB")
		if err != nil {
			log.Fatal(err)
		}
		jobs, err := repro.GenerateJobs(bench, stack.NumCores(), durationS, 11)
		if err != nil {
			log.Fatal(err)
		}
		var base float64
		for _, dpm := range []bool{false, true} {
			for _, name := range policies {
				pol, err := repro.PolicyByName(name, stack, 11)
				if err != nil {
					log.Fatal(err)
				}
				res, err := repro.Run(repro.SimConfig{
					Exp:       e,
					Policy:    pol,
					Jobs:      jobs,
					UseDPM:    dpm,
					DurationS: durationS,
					Seed:      11,
				})
				if err != nil {
					log.Fatal(err)
				}
				if name == "Default" && !dpm {
					base = res.Sched.MeanResponseS
				}
				table.AddRow(e.String(), name, fmt.Sprintf("%v", dpm),
					res.Metrics.HotSpotPct,
					res.Metrics.CyclePct,
					metrics.NormalizedPerformance(base, res.Sched.MeanResponseS),
					res.AvgPowerW,
					res.SleepEntries)
			}
		}
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading guide: DPM cuts power (AvgW) and hot spots but amplifies thermal")
	fmt.Println("cycles (Cyc%) — the reliability trade-off Section V-D discusses; the")
	fmt.Println("hybrid keeps DVFS's hot-spot reduction at a lower performance cost.")
}
