// Custom stack and custom policy: the library is not limited to the
// paper's four configurations. This example hand-builds a 3-tier stack
// (two logic tiers sandwiching a memory tier), implements a bespoke
// "coolest-core-first" policy against the policy interface, and runs it
// with Adapt3D's thermal indices printed for comparison.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/geometry"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// coolestFirst is a minimal custom allocator: every job goes to the
// coolest core with the shortest queue, with no probabilistic smoothing.
type coolestFirst struct{}

func (coolestFirst) Name() string { return "CoolestFirst" }

func (coolestFirst) AssignCore(v *policy.View, _ workload.Job) int {
	minQ := v.QueueLens[0]
	for _, q := range v.QueueLens[1:] {
		if q < minQ {
			minQ = q
		}
	}
	best := -1
	for c := 0; c < v.NumCores(); c++ {
		if v.QueueLens[c] != minQ {
			continue
		}
		if best < 0 || v.TempsC[c] < v.TempsC[best] {
			best = c
		}
	}
	return best
}

func (coolestFirst) Tick(*policy.View) policy.TickDecision { return policy.TickDecision{} }

// buildThreeTier assembles logic/memory/logic with 8 cores total.
func buildThreeTier() (*floorplan.Stack, error) {
	s := &floorplan.Stack{
		Name:                     "custom-3tier",
		InterlayerResistivityMKW: thermal.NewTSVModel().JointResistivity(2048),
		InterlayerThicknessMM:    floorplan.InterlayerThicknessMM,
	}
	// The floorplan package exposes Block/Layer directly for custom
	// builds; here we reuse the T1-derived mixed layers for the logic
	// tiers and a memory layer between them.
	mk := func() error {
		l0 := mixed(0, 0, 0)
		l1 := memory(1, 2)
		l2 := mixed(2, 4, 4)
		s.Layers = []*floorplan.Layer{l0, l1, l2}
		return s.Finalize()
	}
	if err := mk(); err != nil {
		return nil, err
	}
	return s, nil
}

func mixed(index, firstCore, firstL2 int) *floorplan.Layer {
	// Assemble a mixed layer directly from blocks (4 cores, 2 L2 banks,
	// crossbar and filler), demonstrating the low-level floorplan API.
	const (
		coreW = floorplan.ChipWMM / 4
		coreH = floorplan.CoreAreaMM2 / coreW
		l2W   = floorplan.ChipWMM / 2
		l2H   = floorplan.L2AreaMM2 / l2W
	)
	l := &floorplan.Layer{Index: index, ThicknessMM: floorplan.DieThicknessMM}
	for i := 0; i < 4; i++ {
		l.Blocks = append(l.Blocks, &floorplan.Block{
			Name: fmt.Sprintf("core%d", firstCore+i), Kind: floorplan.KindCore,
			Rect:  mustRect(float64(i)*coreW, 0, coreW, coreH),
			Layer: index, CoreID: firstCore + i, L2ID: -1,
		})
	}
	for i := 0; i < 2; i++ {
		l.Blocks = append(l.Blocks, &floorplan.Block{
			Name: fmt.Sprintf("scdata%d", firstL2+i), Kind: floorplan.KindL2,
			Rect:  mustRect(float64(i)*l2W, floorplan.ChipHMM-l2H, l2W, l2H),
			Layer: index, CoreID: -1, L2ID: firstL2 + i,
		})
	}
	midH := floorplan.ChipHMM - coreH - l2H
	l.Blocks = append(l.Blocks,
		&floorplan.Block{Name: fmt.Sprintf("xbar_L%d", index), Kind: floorplan.KindCrossbar,
			Rect: mustRect(0, coreH, floorplan.ChipWMM/2, midH), Layer: index, CoreID: -1, L2ID: -1},
		&floorplan.Block{Name: fmt.Sprintf("other_L%d", index), Kind: floorplan.KindOther,
			Rect: mustRect(floorplan.ChipWMM/2, coreH, floorplan.ChipWMM/2, midH), Layer: index, CoreID: -1, L2ID: -1},
	)
	return l
}

func memory(index, firstL2 int) *floorplan.Layer {
	const (
		l2W = floorplan.ChipWMM / 2
		l2H = floorplan.L2AreaMM2 / l2W
	)
	l := &floorplan.Layer{Index: index, ThicknessMM: floorplan.DieThicknessMM}
	for i := 0; i < 2; i++ {
		l.Blocks = append(l.Blocks, &floorplan.Block{
			Name: fmt.Sprintf("scdata%d", firstL2+i), Kind: floorplan.KindL2,
			Rect:  mustRect(float64(i)*l2W, 0, l2W, l2H),
			Layer: index, CoreID: -1, L2ID: firstL2 + i,
		})
	}
	rest := floorplan.ChipHMM - l2H
	l.Blocks = append(l.Blocks,
		&floorplan.Block{Name: fmt.Sprintf("memother%dA", index), Kind: floorplan.KindOther,
			Rect: mustRect(0, l2H, floorplan.ChipWMM, rest), Layer: index, CoreID: -1, L2ID: -1},
	)
	return l
}

func mustRect(x, y, w, h float64) geometry.Rect { return geometry.MustRect(x, y, w, h) }

func main() {
	log.SetFlags(0)

	stack, err := buildThreeTier()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(floorplan.RenderStack(stack, 46, 8))

	model, err := thermal.NewBlockModel(stack, thermal.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	alpha, err := core.SteadyStateIndices(stack, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Adapt3D thermal indices for the custom stack:")
	for id, a := range alpha {
		fmt.Printf("  core%-2d layer %d  α = %.2f\n", id, stack.Core(id).Layer, a)
	}

	bench, err := workload.ByName("MPlayer&Web")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 9
	adapt, err := core.NewWithModel(stack, model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, pol := range []policy.Policy{coolestFirst{}, adapt} {
		res, err := sim.Run(sim.Config{
			CustomStack: stack,
			Policy:      pol,
			Bench:       bench,
			DurationS:   240,
			Seed:        9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s: hot %.2f%%, peak %.1f °C, response %.3f s\n",
			res.PolicyName, res.Metrics.HotSpotPct, res.Metrics.MaxTempC, res.Sched.MeanResponseS)
	}
}
