package repro

import (
	"strings"
	"testing"
)

func TestFacadeBuildAndRun(t *testing.T) {
	stack, err := BuildStack(EXP2)
	if err != nil {
		t.Fatal(err)
	}
	if stack.NumCores() != 8 {
		t.Fatalf("EXP2 has %d cores, want 8", stack.NumCores())
	}
	bench, err := BenchmarkByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := GenerateJobs(bench, stack.NumCores(), 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	adapt, err := NewAdapt3D(stack, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(SimConfig{Exp: EXP2, Policy: adapt, Jobs: jobs, DurationS: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "Adapt3D" {
		t.Errorf("policy name %q", res.PolicyName)
	}
	if res.Ticks != 200 {
		t.Errorf("ticks = %d, want 200", res.Ticks)
	}
}

func TestFacadePolicyRoster(t *testing.T) {
	names := PolicyNames()
	if len(names) != 14 { // the paper's 11 + DVFS_Rel + the MPC pair
		t.Fatalf("roster has %d names", len(names))
	}
	stack, _ := BuildStack(EXP1)
	set, err := PolicySet(stack, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != len(names) {
		t.Fatalf("set size %d != names %d", len(set), len(names))
	}
	p, err := PolicyByName("Migr", stack, 3)
	if err != nil || p.Name() != "Migr" {
		t.Errorf("PolicyByName failed: %v %v", p, err)
	}
}

func TestFacadeModelsAndRender(t *testing.T) {
	stack, _ := BuildStack(EXP3)
	m, err := NewThermalModel(stack)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBlocks() != stack.NumBlocks() {
		t.Error("thermal model block count mismatch")
	}
	if err := DefaultThermalParams().Validate(); err != nil {
		t.Error(err)
	}
	if err := DefaultPowerModel().Validate(); err != nil {
		t.Error(err)
	}
	out := RenderStack(stack)
	if !strings.Contains(out, "EXP-3") || !strings.Contains(out, "heat sink") {
		t.Error("render output incomplete")
	}
	if len(Benchmarks()) != 8 {
		t.Error("Table I should have 8 benchmarks")
	}
}
