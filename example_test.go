package repro_test

import (
	"fmt"

	repro "repro"
)

// Example is the library quickstart: build the paper's EXP-1 stack,
// race the thermally-oblivious OS balancer against the lifetime-aware
// DVFS_Rel policy on the identical workload trace, and compare hot
// spots and worst-block wear. It runs under `go test`, so it can never
// drift from the API.
func Example() {
	stack, err := repro.BuildStack(repro.EXP1)
	if err != nil {
		panic(err)
	}
	bench, err := repro.BenchmarkByName("Web-med")
	if err != nil {
		panic(err)
	}
	// One pre-generated trace replayed under both policies — the
	// fairness rule every comparison in the repository follows.
	jobs, err := repro.GenerateJobs(bench, stack.NumCores(), 60, 7)
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"Default", "DVFS_Rel"} {
		pol, err := repro.PolicyByName(name, stack, 7)
		if err != nil {
			panic(err)
		}
		res, err := repro.Run(repro.SimConfig{
			Exp:           repro.EXP1,
			Policy:        pol,
			Jobs:          jobs,
			DurationS:     60,
			Seed:          7,
			TrackLifetime: true,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s ticks=%d completed=%d worst-block damage=%.2f\n",
			res.PolicyName, res.Ticks, res.JobsCompleted, res.Lifetime.Worst().CycleDamage)
	}
	// Output:
	// Default  ticks=600 completed=21 worst-block damage=0.15
	// DVFS_Rel ticks=600 completed=21 worst-block damage=0.10
}
