// Command doccheck is the repository's documentation gate: a small
// go vet-style checker that fails when a package under the given
// directories exports an identifier without a doc comment, or lacks a
// package comment entirely. CI's lint job runs it over internal/ so
// the package documentation contract (every package self-describing,
// every exported name explained) is enforced rather than aspirational.
//
// Usage:
//
//	doccheck [-tests] dir [dir ...]
//
// Each dir is walked recursively; every directory containing Go files
// is checked as a package. Exit status is 1 if any violation is found.
// Violations print one per line as file:line: message, the format
// editors and CI annotations already understand.
//
// The rule set mirrors the conventional (staticcheck ST1000/ST1020-ish)
// expectations without pulling in a dependency:
//
//   - every package must carry a package comment on some file;
//   - every exported type, function, method, constant, and variable
//     must have a doc comment, except that one comment on a grouped
//     const/var declaration covers the whole group;
//   - methods of unexported types are exempt (their type is not part
//     of the API), as are generated files (a "Code generated" header).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	tests := flag.Bool("tests", false, "also check in-package _test.go files (external package foo_test files stay exempt: their exported names are Test/Example harness entry points, not API)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-tests] dir [dir ...]")
		os.Exit(2)
	}
	bad := 0
	for _, root := range flag.Args() {
		dirs, err := packageDirs(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			viols, err := checkDir(dir, *tests)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
				os.Exit(2)
			}
			for _, v := range viols {
				fmt.Println(v)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// packageDirs returns every directory under root holding Go files.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// pkgFile is one parsed file with its path.
type pkgFile struct {
	path string
	ast  *ast.File
}

// checkDir parses one package directory and returns its violations.
func checkDir(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPkg := map[string][]pkgFile{} // package name -> files, in name order
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg := f.Name.Name
		if strings.HasSuffix(pkg, "_test") {
			continue
		}
		byPkg[pkg] = append(byPkg[pkg], pkgFile{path: path, ast: f})
	}
	var viols []string
	for _, files := range byPkg {
		viols = append(viols, checkPackage(fset, files)...)
	}
	sort.Strings(viols)
	return viols, nil
}

// checkPackage applies the rule set to one parsed package.
func checkPackage(fset *token.FileSet, files []pkgFile) []string {
	var viols []string
	hasPkgDoc := false
	var firstFile, pkgName string

	// Exported type names, so methods on unexported receivers can be
	// exempted in a second pass.
	exportedTypes := map[string]bool{}
	for _, pf := range files {
		for _, decl := range pf.ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					exportedTypes[ts.Name.Name] = true
				}
			}
		}
	}

	for _, pf := range files {
		f := pf.ast
		if generated(f) {
			continue
		}
		if firstFile == "" {
			firstFile, pkgName = pf.path, f.Name.Name
		}
		if f.Doc != nil {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !receiverExported(d.Recv, exportedTypes) {
					continue
				}
				viols = append(viols, violation(fset, d.Pos(), "func", d.Name.Name))
			case *ast.GenDecl:
				viols = append(viols, checkGenDecl(fset, d)...)
			}
		}
	}
	if !hasPkgDoc && firstFile != "" {
		viols = append(viols, fmt.Sprintf("%s: package %s has no package comment", firstFile, pkgName))
	}
	return viols
}

// checkGenDecl checks one type/const/var declaration. A doc comment on
// the declaration covers every spec in its group; otherwise each
// exported spec needs its own.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) []string {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return nil
	}
	var viols []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				viols = append(viols, violation(fset, s.Pos(), "type", s.Name.Name))
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					viols = append(viols, violation(fset, n.Pos(), d.Tok.String(), n.Name))
				}
			}
		}
	}
	return viols
}

// receiverExported reports whether a method's receiver type is
// exported in this package.
func receiverExported(recv *ast.FieldList, exported map[string]bool) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return exported[tt.Name]
		default:
			return false
		}
	}
}

// generated reports whether the file carries the standard generated-
// code marker. Per the go command convention the marker must appear
// before the package clause — a comment elsewhere merely quoting the
// marker text does not exempt the file.
func generated(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "// Code generated ") && strings.HasSuffix(c.Text, " DO NOT EDIT.") {
				return true
			}
		}
	}
	return false
}

// violation formats one finding.
func violation(fset *token.FileSet, pos token.Pos, kind, name string) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name)
}
