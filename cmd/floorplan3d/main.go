// Command floorplan3d draws the builtin 3D stack configurations — the
// paper's Figure 1 four plus the extended EXP-5/6 — or any declarative
// StackSpec (-stack), with validation and per-core thermal
// susceptibility.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/floorplanopt"
	"repro/internal/thermal"
	"repro/scenarios"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("floorplan3d: ")

	expFlag := flag.String("exp", "", "single experiment to draw (1..6; empty = every builtin stack)")
	stackFlag := flag.String("stack", "", "declarative stack to draw instead: a StackSpec JSON file or a library name ("+strings.Join(scenarios.Names(), ", ")+")")
	widthFlag := flag.Int("width", 46, "drawing width in characters")
	optFlag := flag.Bool("optimize", false, "run the thermally-aware tier-ordering search on each stack")
	flag.Parse()

	var stacks []*floorplan.Stack
	if *stackFlag != "" {
		spec, err := scenarios.Load(*stackFlag)
		if err != nil {
			log.Fatal(err)
		}
		s, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		stacks = append(stacks, s)
	} else {
		// The tool enumerates every builtin stack (a coverage surface,
		// not a paper figure), so the extended roster is the right
		// default here.
		exps := floorplan.ExtendedExperiments()
		if *expFlag != "" {
			e, err := floorplan.ParseExperiment(*expFlag)
			if err != nil {
				log.Fatal(err)
			}
			exps = []floorplan.Experiment{e}
		}
		for _, e := range exps {
			s, err := floorplan.Build(e)
			if err != nil {
				log.Fatal(err)
			}
			stacks = append(stacks, s)
		}
	}
	for _, s := range stacks {
		if err := s.Validate(); err != nil {
			log.Fatalf("%s: %v", s.Name, err)
		}
		fmt.Fprint(os.Stdout, floorplan.RenderStack(s, *widthFlag, 10))
		fmt.Println("\nPer-core hot-spot susceptibility (layer + lateral position):")
		for id := 0; id < s.NumCores(); id++ {
			c := s.Core(id)
			fmt.Printf("  core%-2d layer %d  susceptibility %.2f\n", id, c.Layer, s.HotSusceptibility(id))
		}
		if *optFlag {
			res, err := floorplanopt.OptimizeOrder(s, floorplanopt.PeakSteadyTemp(thermal.DefaultParams()))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nDesign-stage tier ordering search (%d candidates):\n", res.Evaluated)
			fmt.Printf("  shipped ordering peak %.2f °C; best ordering %v peak %.2f °C (Δ %.2f)\n",
				res.Baseline, res.Perm, res.Score, res.Baseline-res.Score)
		}
		fmt.Println()
	}
}
