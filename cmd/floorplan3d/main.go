// Command floorplan3d prints the paper's Figure 1: the four 3D stack
// configurations (EXP-1..EXP-4) built from UltraSPARC T1 components,
// with validation and per-core thermal susceptibility.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/floorplan"
	"repro/internal/floorplanopt"
	"repro/internal/thermal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("floorplan3d: ")

	expFlag := flag.String("exp", "", "single experiment to draw (1..6; empty = the paper's four)")
	widthFlag := flag.Int("width", 46, "drawing width in characters")
	optFlag := flag.Bool("optimize", false, "run the thermally-aware tier-ordering search on each stack")
	flag.Parse()

	exps := floorplan.AllExperiments()
	if *expFlag != "" {
		e, err := floorplan.ParseExperiment(*expFlag)
		if err != nil {
			log.Fatal(err)
		}
		exps = []floorplan.Experiment{e}
	}
	for _, e := range exps {
		s, err := floorplan.Build(e)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			log.Fatalf("%v: %v", e, err)
		}
		fmt.Fprint(os.Stdout, floorplan.RenderStack(s, *widthFlag, 10))
		fmt.Println("\nPer-core hot-spot susceptibility (layer + lateral position):")
		for id := 0; id < s.NumCores(); id++ {
			c := s.Core(id)
			fmt.Printf("  core%-2d layer %d  susceptibility %.2f\n", id, c.Layer, s.HotSusceptibility(id))
		}
		if *optFlag {
			res, err := floorplanopt.OptimizeOrder(s, floorplanopt.PeakSteadyTemp(thermal.DefaultParams()))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nDesign-stage tier ordering search (%d candidates):\n", res.Evaluated)
			fmt.Printf("  shipped ordering peak %.2f °C; best ordering %v peak %.2f °C (Δ %.2f)\n",
				res.Baseline, res.Perm, res.Score, res.Baseline-res.Score)
		}
		fmt.Println()
	}
}
