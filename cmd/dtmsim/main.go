// Command dtmsim runs one (experiment, policy, workload) simulation and
// prints the paper's metrics for that run.
//
// Usage:
//
//	dtmsim -exp 3 -policy Adapt3D -bench Web-med -duration 300 -dpm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/floorplan"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
	"repro/scenarios"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtmsim: ")

	expFlag := flag.String("exp", "1", "experiment configuration (1..6; 5-6 are the extended 16/24-core stacks)")
	stackFlag := flag.String("stack", "", "declarative stack instead of -exp: a StackSpec JSON file or a library name ("+strings.Join(scenarios.Names(), ", ")+")")
	policyFlag := flag.String("policy", "Default", "policy name: "+strings.Join(exp.PolicyOrder, ", "))
	benchFlag := flag.String("bench", "Web-med", "Table I benchmark name")
	durFlag := flag.Float64("duration", 300, "simulated seconds")
	seedFlag := flag.Int64("seed", 1, "random seed")
	dpmFlag := flag.Bool("dpm", false, "enable dynamic power management (fixed timeout)")
	gridFlag := flag.Int("grid", 0, "thermal grid resolution per side (0 = block mode)")
	traceFlag := flag.String("trace", "", "write a per-tick CSV temperature/power trace to this file")
	relFlag := flag.Bool("reliability", false, "track lifetime metrics: per-core wear assessor plus the streaming per-block tracker (cycling damage, EM acceleration, relative MTTF)")
	heatFlag := flag.Bool("heatmap", false, "draw per-layer ASCII heat maps of the final thermal field")
	flag.Parse()

	cfg := sim.Config{
		UseDPM:            *dpmFlag,
		DurationS:         *durFlag,
		Seed:              *seedFlag,
		GridRows:          *gridFlag,
		GridCols:          *gridFlag,
		AssessReliability: *relFlag,
		TrackLifetime:     *relFlag,
	}
	var stack *floorplan.Stack
	var stackLabel string
	if *stackFlag != "" {
		spec, err := scenarios.Load(*stackFlag)
		if err != nil {
			log.Fatal(err)
		}
		if stack, err = spec.Build(); err != nil {
			log.Fatal(err)
		}
		cfg.StackSpec = &spec
		stackLabel = stack.Name
		if stackLabel == "" {
			stackLabel = "stack:" + spec.Hash()
		}
	} else {
		e, err := floorplan.ParseExperiment(*expFlag)
		if err != nil {
			log.Fatal(err)
		}
		if stack, err = floorplan.Build(e); err != nil {
			log.Fatal(err)
		}
		cfg.Exp = e
		stackLabel = e.String()
	}
	pol, err := exp.BuildPolicy(*policyFlag, stack, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := workload.ByName(*benchFlag)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Policy = pol
	cfg.Bench = bench
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.TraceWriter = f
	}
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	fmt.Fprintf(w, "%s on %s, %s, %.0f s simulated, DPM=%v\n", res.PolicyName, stackLabel, bench.Name, *durFlag, res.UseDPM)
	fmt.Fprintf(w, "  hot spots        : %6.2f %% of core-time above 85 °C\n", res.Metrics.HotSpotPct)
	fmt.Fprintf(w, "  spatial gradients: %6.2f %% of time above 15 °C (worst layer)\n", res.Metrics.GradientPct)
	fmt.Fprintf(w, "  thermal cycles   : %6.2f %% of windows with ΔT > 20 °C\n", res.Metrics.CyclePct)
	fmt.Fprintf(w, "  temperatures     : avg core %.1f °C, peak %.1f °C, worst vertical gradient %.2f °C\n",
		res.Metrics.AvgCoreTempC, res.Metrics.MaxTempC, res.Metrics.MaxVerticalC)
	fmt.Fprintf(w, "  power / energy   : %.1f W average, %.1f kJ total\n", res.AvgPowerW, res.EnergyJ/1000)
	fmt.Fprintf(w, "  scheduling       : %d/%d jobs completed, mean response %.3f s, %d migrations\n",
		res.JobsCompleted, res.JobsGenerated, res.Sched.MeanResponseS, res.Sched.TotalMigration)
	if res.UseDPM {
		fmt.Fprintf(w, "  DPM              : %d sleep transitions\n", res.SleepEntries)
	}
	if res.GatedTicks > 0 {
		fmt.Fprintf(w, "  clock gating     : %d core-ticks stalled\n", res.GatedTicks)
	}
	if *relFlag {
		worst := res.WorstCoreStress
		fmt.Fprintf(w, "  reliability      : worst core %d — EM acceleration %.2fx, cycling damage %.3f (%d full cycles)\n",
			worst.Core, worst.EMAcceleration, worst.CyclingDamage, worst.FullCycles)
		if lt := res.Lifetime; lt != nil {
			wb := lt.Worst()
			fmt.Fprintf(w, "  lifetime         : worst block %s (layer %d) — cycling damage %.3f over %d cycles, EM %.2fx; chip total %.3f, rel. MTTF %.3g\n",
				wb.Name, wb.Layer, wb.CycleDamage, wb.Cycles, wb.EMFactor, lt.TotalCycleDamage, lt.RelMTTF)
			for l, d := range lt.LayerDamage {
				fmt.Fprintf(w, "    layer %d damage : %.3f\n", l, d)
			}
		}
	}
	if *traceFlag != "" {
		fmt.Fprintf(w, "  trace            : written to %s\n", *traceFlag)
	}
	if *heatFlag {
		hm, err := thermal.RenderHeatmap(stack, res.FinalBlockTempsC, thermal.HeatmapOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, hm)
		if hot, err := thermal.HotBlocks(stack, res.FinalBlockTempsC, 85); err == nil && len(hot) > 0 {
			fmt.Fprintf(w, "blocks above 85 °C at end of run: %s\n", strings.Join(hot, ", "))
		}
	}
}
