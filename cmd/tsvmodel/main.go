// Command tsvmodel regenerates Figure 2 of the paper: the joint thermal
// resistivity of the die-to-die interface material as a function of
// through-silicon-via density, with the area-overhead accounting that
// justifies the paper's 0.23 mK/W operating point.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/thermal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvmodel: ")

	maxFlag := flag.Int("max", 4096, "largest via count to sweep")
	stepsFlag := flag.Int("steps", 12, "number of sweep points")
	chartFlag := flag.Bool("chart", false, "also draw an ASCII chart")
	flag.Parse()

	if *maxFlag <= 0 || *stepsFlag < 2 {
		log.Fatal("need -max > 0 and -steps >= 2")
	}
	counts := make([]int, 0, *stepsFlag)
	for i := 0; i < *stepsFlag; i++ {
		counts = append(counts, i**maxFlag/(*stepsFlag-1))
	}
	m := thermal.NewTSVModel()
	pts := m.Fig2Curve(counts)

	t := report.NewTable("Fig. 2: Effect of Vias on the Resistivity of the Interface Material",
		"TSVs", "Density %", "Area Overhead %", "Joint Resistivity mK/W")
	labels := make([]string, 0, len(pts))
	values := make([]float64, 0, len(pts))
	for _, p := range pts {
		t.AddRow(p.ViaCount, fmt.Sprintf("%.4f", p.DensityPct), fmt.Sprintf("%.3f", p.AreaOverheadPct),
			fmt.Sprintf("%.4f", p.JointResistivity))
		labels = append(labels, fmt.Sprintf("%d", p.ViaCount))
		values = append(values, p.JointResistivity)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPaper operating point: 1024 vias -> %.3f mK/W (%.2f%% area overhead, %.1f vias/mm²)\n",
		m.JointResistivity(1024), 100*m.AreaOverhead(1024), 1024.0/115.0)
	if *chartFlag {
		fmt.Println()
		if err := report.BarChart(os.Stdout, "Joint resistivity (mK/W) vs via count", labels, values, 50); err != nil {
			log.Fatal(err)
		}
	}
}
