package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain re-execs the test binary as dtmsweep when the marker is
// set, so smoke tests can drive real flag parsing (and its exit codes)
// without building the command separately.
func TestMain(m *testing.M) {
	if os.Getenv("DTMSWEEP_SMOKE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runMain re-invokes this test binary as the command with the given
// arguments, returning its exit code and combined output.
func runMain(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "DTMSWEEP_SMOKE_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v", args, err)
	}
	return ee.ExitCode(), string(out)
}

func TestHelpExitsZero(t *testing.T) {
	code, out := runMain(t, "-h")
	if code != 0 {
		t.Fatalf("-h exited %d:\n%s", code, out)
	}
	for _, flag := range []string{"-figure", "-remote", "-canonical", "-shard", "-resume", "-policies"} {
		if !strings.Contains(out, flag) {
			t.Fatalf("usage text missing %s:\n%s", flag, out)
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	code, out := runMain(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("bad flag exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "Usage") {
		t.Fatalf("bad flag printed no usage:\n%s", out)
	}
}
