// Command dtmsweep regenerates the paper's evaluation: Tables I-II,
// Figure 2 (TSV resistivity), and Figures 3-6 (hot spots without/with
// DPM, spatial gradients, thermal cycles) across every policy and 3D
// configuration, plus the lifetime extension (-figure 7: worst-block
// cycling damage and relative MTTF). It doubles as the streaming sweep
// driver: with -out it expands the configured sweep to a deterministic
// job list, runs it on a worker pool, and streams one record per
// completed run, with optional sharding across machines (-shard), a
// JSONL checkpoint (-checkpoint), and resumption of a killed sweep
// (-resume).
//
// Usage:
//
//	dtmsweep                          # everything (figure mode)
//	dtmsweep -figure 3                # one figure
//	dtmsweep -figure 7                # lifetime report (damage + rel. MTTF)
//	dtmsweep -duration 600            # longer runs
//	dtmsweep -csv                     # machine-readable figure output
//	dtmsweep -replicates 5 -figure 4  # mean±stddev cells
//
//	dtmsweep -out jsonl -checkpoint ck.jsonl          # streaming sweep
//	dtmsweep -out csv -shard 1/4 -checkpoint s1.jsonl # shard 1 of 4
//	dtmsweep -out jsonl -resume ck.jsonl -checkpoint ck.jsonl  # resume
//	dtmsweep -out jsonl -canonical                    # deterministic byte-stable stream
//	dtmsweep -out jsonl -remote http://host:8080      # run on a dtmserved instance
//	dtmsweep -out jsonl -remote http://a:8080,http://b:8080  # route across a dtmserved cluster
//	dtmsweep -out jsonl -reliability                  # records carry rel_* wear fields
//	dtmsweep -out jsonl -reliability -stress          # + degraded-TSV stress scenario
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/floorplan"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/thermal"
	scenlib "repro/scenarios"
)

// stopProfiles flushes any active CPU/heap profiles; idempotent. It is
// a package variable so fatal can run it before os.Exit.
var stopProfiles = func() {}

// fatal is log.Fatal with profiler teardown first.
func fatal(v ...any) {
	stopProfiles()
	log.Fatal(v...)
}

// fatalf is log.Fatalf with profiler teardown first.
func fatalf(format string, v ...any) {
	stopProfiles()
	log.Fatalf(format, v...)
}

// startProfiles begins CPU profiling and returns an idempotent teardown
// that stops it and writes the heap profile.
func startProfiles(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuPath != "" {
				pprof.StopCPUProfile()
			}
			if memPath == "" {
				return
			}
			f, err := os.Create(memPath)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		})
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtmsweep: ")

	figFlag := flag.Int("figure", 0, "figure to regenerate (2..6, or 7 for the lifetime report; 0 = all paper figures including Tables I-II)")
	durFlag := flag.Float64("duration", 300, "simulated seconds per run")
	seedFlag := flag.Int64("seed", 1, "random seed")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of aligned tables (figure mode)")
	benchFlag := flag.String("benchmarks", "", "comma-separated Table I benchmark names (default: representative mix)")
	solverFlag := flag.String("solver", "cached", "thermal solver path(s): cached (sparse direct, shared factorizations), sparse, or dense; sweep mode accepts a comma-separated list")
	statsFlag := flag.Bool("solverstats", false, "print thermal factorization cache statistics after the sweep")
	repFlag := flag.Int("replicates", 1, "independent seeds per cell; >1 reports mean±stddev")

	outFlag := flag.String("out", "", "switch to streaming sweep mode and write per-run records to stdout as csv or jsonl")
	remoteFlag := flag.String("remote", "", "run the sweep on dtmserved instance(s) instead of locally: one base URL (e.g. http://host:8080), or a comma-separated cluster list routed by rendezvous-hashed job key (sweep mode)")
	canonFlag := flag.Bool("canonical", false, "emit records in canonical job order with elapsed_ms stripped, byte-identical across runs and to a dtmserved stream (sweep mode)")
	shardFlag := flag.String("shard", "", "run only shard i of n ('i/n', 0-based) of the sweep's job list (sweep mode)")
	resumeFlag := flag.String("resume", "", "JSONL checkpoint of a previous invocation; completed jobs are skipped (sweep mode)")
	ckFlag := flag.String("checkpoint", "", "append every completed run to this JSONL file (sweep mode)")
	expsFlag := flag.String("exps", "", "comma-separated stack configurations 1..6 (default: the paper's 1,2,3,4; 5-6 are the extended scenario space)")
	stackFlag := flag.String("stack", "", "comma-separated declarative stacks to sweep: StackSpec JSON files or library names ("+strings.Join(scenlib.Names(), ", ")+"); with no -exps they replace the builtin default (sweep mode)")
	policiesFlag := flag.String("policies", "", "comma-separated policy names (default: full roster)")
	dpmFlag := flag.Bool("dpm", false, "compose the fixed-timeout power manager into every run (sweep mode)")
	durationsFlag := flag.String("durations", "", "comma-separated simulated durations in seconds (sweep mode; default: -duration)")
	gridFlag := flag.String("grid", "", "'RxC': additionally sweep every stack in grid thermal mode with R x C cells per layer (sweep mode)")
	relFlag := flag.Bool("reliability", false, "attach the streaming lifetime tracker to every run: sweep records carry the rel_* wear fields; figure 7 implies it")
	stressFlag := flag.Bool("stress", false, "add the degraded-TSV stress scenario (doubled joint resistivity) to the sweep (sweep mode)")
	workersFlag := flag.Int("workers", 0, "worker pool size (0: one per CPU)")
	cpuProfFlag := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (inspect with go tool pprof)")
	memProfFlag := flag.String("memprofile", "", "write a heap profile at exit to this file (inspect with go tool pprof)")
	flag.Parse()

	// Profiling hooks for the hot-path work: the tick pipeline is
	// allocation-free in steady state, so a heap profile of a sweep
	// should be dominated by per-run setup (factorizations, traces) —
	// anything per-tick showing up here is a regression worth chasing.
	// Every exit path below goes through fatal(), which flushes the
	// profiles first: log.Fatal's os.Exit would skip the defer and
	// leave a truncated CPU profile exactly when a failed long sweep
	// most needs inspecting.
	stopProfiles = startProfiles(*cpuProfFlag, *memProfFlag)
	defer stopProfiles()

	if *statsFlag {
		defer func() {
			entries, hits, misses := thermal.FactorCacheStats()
			fmt.Fprintf(os.Stderr, "thermal factor cache: %d entries, %d hits, %d factorizations\n", entries, hits, misses)
		}()
	}

	if *outFlag != "" {
		if err := sweepMode(sweepFlags{
			out:         *outFlag,
			remote:      *remoteFlag,
			canonical:   *canonFlag,
			shard:       *shardFlag,
			resume:      *resumeFlag,
			checkpoint:  *ckFlag,
			exps:        *expsFlag,
			stacks:      *stackFlag,
			policies:    *policiesFlag,
			benchmarks:  *benchFlag,
			solvers:     *solverFlag,
			durations:   *durationsFlag,
			grid:        *gridFlag,
			duration:    *durFlag,
			seed:        *seedFlag,
			replicates:  *repFlag,
			dpm:         *dpmFlag,
			reliability: *relFlag,
			stress:      *stressFlag,
			workers:     *workersFlag,
		}); err != nil {
			fatal(err)
		}
		return
	}

	solver, err := thermal.ParseSolverKind(*solverFlag)
	if err != nil {
		fatal(err)
	}
	f := exp.FigureConfig{DurationS: *durFlag, Seed: *seedFlag, Solver: solver, Replicates: *repFlag}
	if *benchFlag != "" {
		f.Benchmarks = strings.Split(*benchFlag, ",")
	}
	w := os.Stdout

	render := func(t *report.Table) {
		var err error
		if *csvFlag {
			err = t.RenderCSV(w)
		} else {
			err = t.Render(w)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}

	switch *figFlag {
	case 0:
		if *csvFlag {
			fatal("-csv requires selecting a single figure")
		}
		if _, _, err := exp.WriteAllFigures(w, f); err != nil {
			fatal(err)
		}
	case 2:
		render(exp.Fig2Report())
	case 3:
		hs, perf, _, err := exp.Fig3Report(f)
		if err != nil {
			fatal(err)
		}
		render(hs)
		render(perf)
	case 4:
		t, _, err := exp.Fig4Report(f)
		if err != nil {
			fatal(err)
		}
		render(t)
	case 5:
		t, _, err := exp.Fig5Report(f)
		if err != nil {
			fatal(err)
		}
		render(t)
	case 6:
		t, _, err := exp.Fig6Report(f)
		if err != nil {
			fatal(err)
		}
		render(t)
	case 7:
		damage, mttf, _, err := exp.ReliabilityReport(f)
		if err != nil {
			fatal(err)
		}
		render(damage)
		render(mttf)
	default:
		fatalf("unknown figure %d (want 2..7 or 0 for all paper figures)", *figFlag)
	}
}

type sweepFlags struct {
	out, shard, resume, checkpoint string
	remote                         string
	exps, stacks                   string
	policies, benchmarks           string
	solvers, durations, grid       string
	duration                       float64
	seed                           int64
	replicates, workers            int
	dpm, canonical                 bool
	reliability, stress            bool
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildSpec translates the CLI flags into the declarative sweep spec.
func buildSpec(f sweepFlags) (sweep.Spec, error) {
	var zero sweep.Spec
	exps := floorplan.AllExperiments()
	switch {
	case f.exps != "":
		exps = exps[:0]
		for _, tok := range splitList(f.exps) {
			e, err := floorplan.ParseExperiment(tok)
			if err != nil {
				return zero, err
			}
			exps = append(exps, e)
		}
	case f.stacks != "":
		// Declarative stacks replace the builtin default roster; mixing
		// is explicit (-exps and -stack together).
		exps = nil
	}
	scenarios := sweep.ScenariosFor(exps)
	for _, tok := range splitList(f.stacks) {
		spec, err := scenlib.Load(tok)
		if err != nil {
			return zero, err
		}
		// Inline the spec rather than referencing it by name, so a
		// -remote server streams the identical sweep without having the
		// file (or the library version) on its side.
		scenarios = append(scenarios, sweep.Scenario{Stack: &sweep.StackRef{Spec: &spec}})
	}
	if f.grid != "" {
		r, c, ok := strings.Cut(f.grid, "x")
		rows, err1 := strconv.Atoi(strings.TrimSpace(r))
		var cols int
		var err2 error
		if ok {
			cols, err2 = strconv.Atoi(strings.TrimSpace(c))
		}
		if !ok || err1 != nil || err2 != nil || rows <= 0 || cols <= 0 {
			return zero, fmt.Errorf("bad -grid %q (want RxC, e.g. 16x16)", f.grid)
		}
		base := scenarios
		for _, sc := range base {
			sc.GridRows, sc.GridCols = rows, cols
			scenarios = append(scenarios, sc)
		}
	}
	if f.stress {
		scenarios = append(scenarios, exp.StressScenarios()...)
	}

	policies := append([]string{}, exp.PolicyOrder...)
	if f.policies != "" {
		policies = splitList(f.policies)
	}
	benches := exp.DefaultBenchmarks()
	if f.benchmarks != "" {
		benches = splitList(f.benchmarks)
	}

	var solvers []thermal.SolverKind
	for _, tok := range splitList(f.solvers) {
		k, err := thermal.ParseSolverKind(tok)
		if err != nil {
			return zero, err
		}
		solvers = append(solvers, k)
	}

	durations := []float64{f.duration}
	if f.durations != "" {
		durations = durations[:0]
		for _, tok := range splitList(f.durations) {
			d, err := strconv.ParseFloat(tok, 64)
			if err != nil || d <= 0 {
				return zero, fmt.Errorf("bad -durations entry %q", tok)
			}
			durations = append(durations, d)
		}
	}

	return sweep.Spec{
		Scenarios:   scenarios,
		Policies:    policies,
		Benchmarks:  benches,
		Replicates:  f.replicates,
		Seed:        f.seed,
		Solvers:     solvers,
		DurationsS:  durations,
		UseDPM:      f.dpm,
		Reliability: f.reliability,
	}, nil
}

// sweepMode expands, shards, optionally resumes, and executes the
// sweep, streaming records to stdout and the checkpoint file. SIGINT
// cancels cleanly: in-flight runs stop at their next simulated tick
// and everything already completed is in the checkpoint. With -remote
// the jobs run on a dtmserved instance instead of locally; the sinks,
// checkpoint, and resume semantics are unchanged.
func sweepMode(f sweepFlags) error {
	spec, err := buildSpec(f)
	if err != nil {
		return err
	}
	jobs := spec.Expand()
	total := len(jobs)

	shardIdx, shardCnt := 0, 0
	if f.shard != "" {
		idxS, cntS, ok := strings.Cut(f.shard, "/")
		idx, err1 := strconv.Atoi(idxS)
		cnt, err2 := strconv.Atoi(cntS)
		if !ok || err1 != nil || err2 != nil {
			return fmt.Errorf("bad -shard %q (want i/n, e.g. 0/4)", f.shard)
		}
		if jobs, err = sweep.Shard(jobs, idx, cnt); err != nil {
			return err
		}
		shardIdx, shardCnt = idx, cnt
	}

	opts := sweep.Options{Workers: f.workers}
	if f.resume != "" {
		recs, err := sweep.LoadCheckpointFile(f.resume)
		if err != nil {
			return err
		}
		opts.Skip = sweep.CompletedKeys(recs)
		fmt.Fprintf(os.Stderr, "dtmsweep: resuming: %d completed runs in %s\n", len(opts.Skip), f.resume)
	}

	var out sweep.Sink
	switch f.out {
	case "jsonl":
		out = sweep.NewJSONLSink(os.Stdout)
	case "csv":
		out = sweep.NewCSVSink(os.Stdout)
	default:
		return fmt.Errorf("bad -out %q (want csv or jsonl)", f.out)
	}
	if f.canonical && f.remote == "" {
		// Canonical mode: records reach stdout in expansion order with
		// the wall-clock field stripped, so the stream is a pure
		// function of the spec — byte-identical across runs and to what
		// dtmserved streams for the same request. The checkpoint sink
		// below stays completion-ordered: it is a durability surface,
		// and buffering it would lose finished runs on a crash.
		ordered := jobs
		if len(opts.Skip) > 0 {
			ordered = make([]sweep.Job, 0, len(jobs))
			for _, j := range jobs {
				if !opts.Skip[j.Key()] {
					ordered = append(ordered, j)
				}
			}
		}
		out = sweep.NewOrderedSink(sweep.StripElapsed(out), ordered)
	}
	// The checkpoint sink goes FIRST: records are delivered to sinks in
	// order and delivery stops at the first failure, so checkpoint-first
	// guarantees every record that reached stdout (and any consumer
	// downstream of it) is also durable — a resumed run can then never
	// re-emit a record the consumer already saw.
	var sinks []sweep.Sink
	if f.checkpoint != "" {
		ck, err := os.OpenFile(f.checkpoint, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer ck.Close()
		sinks = append(sinks, sweep.NewJSONLSink(ck))
	}
	sinks = append(sinks, out)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if f.remote != "" {
		st, cleanup, err := newStreamer(f.remote)
		if err != nil {
			return err
		}
		defer cleanup()
		start := time.Now()
		fmt.Fprintf(os.Stderr, "dtmsweep: %d jobs in sweep, %d in this shard, %d to run on %s\n",
			total, len(jobs), len(jobs)-countSkipped(jobs, opts.Skip), f.remote)
		n, err := remoteSweep(ctx, st, spec, shardIdx, shardCnt, opts.Skip, sinks...)
		fmt.Fprintf(os.Stderr, "dtmsweep: %d records from %s in %.1fs\n", n, f.remote, time.Since(start).Seconds())
		return err
	}

	// Prewarm only the scenarios this invocation will actually run.
	pending := spec
	pending.Scenarios = nil
	seen := map[string]bool{}
	for _, j := range jobs {
		if opts.Skip[j.Key()] || seen[j.Scenario.ID()] {
			continue
		}
		seen[j.Scenario.ID()] = true
		pending.Scenarios = append(pending.Scenarios, j.Scenario)
	}
	if err := exp.Prewarm(pending); err != nil {
		return err
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "dtmsweep: %d jobs in sweep, %d in this shard, %d to run\n",
		total, len(jobs), len(jobs)-countSkipped(jobs, opts.Skip))
	// Batch same-system jobs through one panel solve per tick; record
	// contents and job keys are identical to the per-job path, so
	// checkpoints and canonical streams are unaffected.
	run, runGroup := exp.NewRunners(exp.RunnerHooks{})
	opts.Group = exp.GroupKey
	opts.RunGroup = runGroup
	n, err := sweep.Execute(ctx, jobs, run, opts, sinks...)
	fmt.Fprintf(os.Stderr, "dtmsweep: %d runs in %.1fs\n", n, time.Since(start).Seconds())
	return err
}

func countSkipped(jobs []sweep.Job, skip map[string]bool) int {
	n := 0
	for _, j := range jobs {
		if skip[j.Key()] {
			n++
		}
	}
	return n
}
