// Command dtmsweep regenerates the paper's evaluation: Tables I-II,
// Figure 2 (TSV resistivity), and Figures 3-6 (hot spots without/with
// DPM, spatial gradients, thermal cycles) across every policy and 3D
// configuration.
//
// Usage:
//
//	dtmsweep                 # everything
//	dtmsweep -figure 3       # one figure
//	dtmsweep -duration 600   # longer runs
//	dtmsweep -csv            # machine-readable output
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/report"
	"repro/internal/thermal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtmsweep: ")

	figFlag := flag.Int("figure", 0, "figure to regenerate (2..6; 0 = all, including Tables I-II)")
	durFlag := flag.Float64("duration", 300, "simulated seconds per run")
	seedFlag := flag.Int64("seed", 1, "random seed")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	benchFlag := flag.String("benchmarks", "", "comma-separated Table I benchmark names (default: representative mix)")
	solverFlag := flag.String("solver", "cached", "thermal solver path: cached (sparse direct, shared factorizations), sparse, or dense")
	statsFlag := flag.Bool("solverstats", false, "print thermal factorization cache statistics after the sweep")
	flag.Parse()

	solver, err := thermal.ParseSolverKind(*solverFlag)
	if err != nil {
		log.Fatal(err)
	}
	f := exp.FigureConfig{DurationS: *durFlag, Seed: *seedFlag, Solver: solver}
	if *benchFlag != "" {
		f.Benchmarks = strings.Split(*benchFlag, ",")
	}
	w := os.Stdout
	defer func() {
		if *statsFlag {
			entries, hits, misses := thermal.FactorCacheStats()
			fmt.Fprintf(os.Stderr, "thermal factor cache: %d entries, %d hits, %d factorizations\n", entries, hits, misses)
		}
	}()

	render := func(t *report.Table) {
		var err error
		if *csvFlag {
			err = t.RenderCSV(w)
		} else {
			err = t.Render(w)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w)
	}

	switch *figFlag {
	case 0:
		if *csvFlag {
			log.Fatal("-csv requires selecting a single figure")
		}
		if _, _, err := exp.WriteAllFigures(w, f); err != nil {
			log.Fatal(err)
		}
	case 2:
		render(exp.Fig2Report())
	case 3:
		hs, perf, _, err := exp.Fig3Report(f)
		if err != nil {
			log.Fatal(err)
		}
		render(hs)
		render(perf)
	case 4:
		t, _, err := exp.Fig4Report(f)
		if err != nil {
			log.Fatal(err)
		}
		render(t)
	case 5:
		t, _, err := exp.Fig5Report(f)
		if err != nil {
			log.Fatal(err)
		}
		render(t)
	case 6:
		t, _, err := exp.Fig6Report(f)
		if err != nil {
			log.Fatal(err)
		}
		render(t)
	default:
		log.Fatalf("unknown figure %d (want 2..6 or 0 for all)", *figFlag)
	}
}
