package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/server"
	"repro/internal/sweep"
)

// remoteSweep runs the sweep on a dtmserved instance instead of the
// local machine: it posts the spec (plus shard selection and resume
// skip-set) to the server's /v1/sweep endpoint and feeds the streamed
// JSONL records into the local sinks, so -out, -checkpoint, and -resume
// behave identically to a local run. The server streams in canonical
// job order with ElapsedMS stripped; the completion trailer
// distinguishes a finished sweep from a truncated one, since a failed
// stream's prefix is indistinguishable from success otherwise. Returns
// the number of records received.
func remoteSweep(ctx context.Context, baseURL string, spec sweep.Spec, shardIdx, shardCnt int, skip map[string]bool, sinks ...sweep.Sink) (n int, err error) {
	req := server.SweepRequest{Spec: spec, ShardIndex: shardIdx, ShardCount: shardCnt}
	for k := range skip {
		req.SkipKeys = append(req.SkipKeys, k)
	}
	sort.Strings(req.SkipKeys) // deterministic request bodies
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}

	url := strings.TrimSuffix(baseURL, "/") + "/v1/sweep"
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return 0, fmt.Errorf("remote sweep: %s: %s", resp.Status, e.Error)
		}
		return 0, fmt.Errorf("remote sweep: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	// Sinks are closed here, mirroring sweep.Execute, so one sweepMode
	// exit path covers local and remote runs.
	defer func() {
		for _, s := range sinks {
			if cerr := s.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("sweep: sink close: %w", cerr)
			}
		}
	}()

	dec := json.NewDecoder(resp.Body)
	for {
		var rec sweep.Record
		if derr := dec.Decode(&rec); derr == io.EOF {
			break
		} else if derr != nil {
			return n, fmt.Errorf("remote sweep: reading stream after %d records: %w", n, derr)
		}
		if rec.Key == "" {
			return n, fmt.Errorf("remote sweep: record %d has no key", n+1)
		}
		for _, s := range sinks {
			if perr := s.Put(rec); perr != nil {
				return n, fmt.Errorf("sweep: sink: %w", perr)
			}
		}
		n++
	}

	// The body is fully read, so the trailer is populated.
	switch st := resp.Trailer.Get("X-Sweep-Status"); st {
	case "complete":
		return n, nil
	case "error":
		return n, fmt.Errorf("remote sweep failed after %d records: %s", n, resp.Trailer.Get("X-Sweep-Error"))
	default:
		if ctx.Err() != nil {
			return n, ctx.Err()
		}
		return n, errors.New("remote sweep: stream ended without a completion trailer (server died mid-sweep?)")
	}
}
