package main

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/sweep"
)

// newStreamer builds the client.Streamer behind the -remote flag: one
// base URL gets a single-backend client.Client, a comma-separated list
// gets a cluster.Router that routes every job key to its rendezvous
// owner and re-merges the per-backend streams into canonical order.
// That constructor choice is the whole difference between single-node
// and cluster serving; everything downstream speaks client.Streamer.
// cleanup releases the streamer's resources (the router's health
// probes) and is non-nil even on the single-backend path.
func newStreamer(remote string) (st client.Streamer, cleanup func(), err error) {
	var backends []string
	for _, b := range strings.Split(remote, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	switch len(backends) {
	case 0:
		return nil, nil, fmt.Errorf("-remote %q names no backend", remote)
	case 1:
		return client.New(backends[0]), func() {}, nil
	default:
		r, err := cluster.New(cluster.Config{Backends: backends})
		if err != nil {
			return nil, nil, err
		}
		return r, r.Close, nil
	}
}

// remoteSweep runs the sweep on dtmserved instance(s) instead of the
// local machine: it hands the spec (plus shard selection and resume
// skip-set) to the streamer and feeds the returned records into the
// local sinks, so -out, -checkpoint, and -resume behave identically to
// a local run. The streamer delivers records in canonical job order
// with ElapsedMS stripped and verifies the server's completion trailer
// (retrying transient failures with only the not-yet-received jobs),
// so a finished remote stream is byte-identical to a local -canonical
// run of the same spec. Returns the number of records received.
func remoteSweep(ctx context.Context, st client.Streamer, spec sweep.Spec, shardIdx, shardCnt int, skip map[string]bool, sinks ...sweep.Sink) (n int, err error) {
	req := client.Request{Spec: spec, ShardIndex: shardIdx, ShardCount: shardCnt}
	for k := range skip {
		req.SkipKeys = append(req.SkipKeys, k)
	}
	sort.Strings(req.SkipKeys) // deterministic request bodies

	// Sinks are closed here, mirroring sweep.Execute, so one sweepMode
	// exit path covers local and remote runs.
	defer func() {
		for _, s := range sinks {
			if cerr := s.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("sweep: sink close: %w", cerr)
			}
		}
	}()

	return st.Stream(ctx, req, func(rec sweep.Record) error {
		for _, s := range sinks {
			if perr := s.Put(rec); perr != nil {
				return fmt.Errorf("sweep: sink: %w", perr)
			}
		}
		return nil
	})
}
