package main

import (
	"fmt"
	"net"
	"net/url"
	"os"
	"strings"
	"time"
)

// peersFileTimeout bounds how long a booting node waits for its
// -peers-file to appear: long enough for a script to collect every
// node's ephemeral address, short enough that a misconfigured path
// fails the boot instead of hanging it.
const peersFileTimeout = 30 * time.Second

// loadPeers returns the cluster node list from -peers, or from
// -peers-file when -peers is empty. The file may list URLs one per
// line or comma-separated, and is polled until it appears (up to
// peersFileTimeout): a cluster booting on ephemeral ports cannot know
// the list before every listener binds, so each node publishes its
// address first (-addr-file) and reads the assembled roster back.
func loadPeers(peers, peersFile string) ([]string, error) {
	raw := peers
	if raw == "" {
		deadline := time.Now().Add(peersFileTimeout)
		for {
			b, err := os.ReadFile(peersFile)
			if err == nil && len(strings.TrimSpace(string(b))) > 0 {
				raw = strings.TrimSpace(string(b))
				break
			}
			if time.Now().After(deadline) {
				if err == nil {
					err = fmt.Errorf("file is empty")
				}
				return nil, fmt.Errorf("waiting for -peers-file %s: %v", peersFile, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	var list []string
	seen := make(map[string]bool)
	for _, tok := range strings.FieldsFunc(raw, func(r rune) bool { return r == ',' || r == '\n' || r == '\r' }) {
		if tok = strings.TrimSpace(tok); tok == "" {
			continue
		}
		if seen[tok] {
			return nil, fmt.Errorf("peer list names %s twice", tok)
		}
		seen[tok] = true
		list = append(list, tok)
	}
	if len(list) < 2 {
		return nil, fmt.Errorf("peer list needs at least 2 nodes (this one included), got %d", len(list))
	}
	return list, nil
}

// hostPort extracts the host and port of a peer base URL, defaulting
// the port from the scheme.
func hostPort(peer string) (host, port string, err error) {
	u, err := url.Parse(peer)
	if err != nil {
		return "", "", fmt.Errorf("peer %s: %v", peer, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", "", fmt.Errorf("peer %s: need an http(s) base URL", peer)
	}
	host, port = u.Hostname(), u.Port()
	if port == "" {
		if u.Scheme == "https" {
			port = "443"
		} else {
			port = "80"
		}
	}
	return host, port, nil
}

// resolveSelf finds this node's own entry in the peer list by matching
// the bound listen address: host and port when the listener is bound to
// a concrete host, port alone when it is bound to a wildcard (every
// peer URL then reaches this process, whatever host it spells).
func resolveSelf(peers []string, bound net.Addr) (string, error) {
	bhost, bport, err := net.SplitHostPort(bound.String())
	if err != nil {
		return "", fmt.Errorf("listen address %s: %v", bound, err)
	}
	wildcard := bhost == "" || bhost == "0.0.0.0" || bhost == "::"
	var self string
	for _, p := range peers {
		h, port, err := hostPort(p)
		if err != nil {
			return "", err
		}
		if port != bport || (!wildcard && h != bhost) {
			continue
		}
		if self != "" {
			return "", fmt.Errorf("peer list entries %s and %s both match the listen address %s", self, p, bound)
		}
		self = p
	}
	if self == "" {
		return "", fmt.Errorf("no peer list entry matches the listen address %s (the -peers list must include this node)", bound)
	}
	return self, nil
}
