// Command dtmserved is the long-running thermal-simulation service: it
// serves the DATE'09 sweep space over HTTP, running submitted
// sweep/simulation jobs on a bounded worker pool and streaming records
// back as JSONL (or SSE), with identical jobs deduplicated through an
// LRU result cache keyed by the orchestrator's deterministic job keys.
//
// Usage:
//
//	dtmserved                        # listen on :8080
//	dtmserved -addr 127.0.0.1:0      # ephemeral port (logged, see -addr-file)
//	dtmserved -workers 8 -cache 8192
//
// Point existing workflows at it with `dtmsweep -out jsonl -remote
// http://host:8080`, or curl it directly (see the README's API
// section). Beyond batch sweeps, /v1/session opens live interactive
// runs: per-tick SSE streaming, mid-run event injection (policy swaps,
// workload changes, TSV failures, forced migrations), and deterministic
// event-log replay (-max-sessions / -session-idle-timeout bound them).
// SIGTERM/SIGINT drain gracefully: in-flight requests finish streaming
// (up to -drain-timeout), sessions close with a terminal `closed`
// event, new work is refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/floorplan"
	"repro/internal/server"
	"repro/scenarios"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtmserved: ")

	addrFlag := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFileFlag := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts booting on a random port)")
	workersFlag := flag.Int("workers", 0, "simulation worker pool size (0: one per CPU)")
	cacheFlag := flag.Int("cache", 0, "result cache capacity in records (0: 4096)")
	maxJobsFlag := flag.Int("max-jobs", 0, "reject sweep requests expanding past this many jobs (0: 4096)")
	maxSessionsFlag := flag.Int("max-sessions", 0, "resident interactive-session cap; at the cap opening a session evicts the oldest idle one (0: 64)")
	sessionIdleFlag := flag.Duration("session-idle-timeout", 0, "evict interactive sessions untouched this long (0: 5m; negative: never)")
	drainFlag := flag.Duration("drain-timeout", 30*time.Second, "how long to let in-flight requests finish on SIGTERM before forcing them")
	stackFlag := flag.String("stack", "", "comma-separated StackSpec JSON files to register by name at startup, so clients can reference them as {\"stack\": \"name\"} (the shipped library — "+strings.Join(scenarios.Names(), ", ")+" — is always registered)")
	peersFlag := flag.String("peers", "", "comma-separated base URLs of every cluster node INCLUDING this one (e.g. http://a:8080,http://b:8080); enables peer-fill: cache misses for keys another node owns are fetched from that owner. All nodes and routers must use the identical list")
	peersFileFlag := flag.String("peers-file", "", "file holding the -peers list (one URL per line or comma-separated), read after the listener binds — lets scripts boot a cluster on ephemeral ports, collect the addresses, then write this file")
	flag.Parse()

	for _, path := range strings.Split(*stackFlag, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		spec, err := scenarios.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		if spec.Name == "" {
			log.Fatalf("%s: registered stack specs need a name", path)
		}
		if err := floorplan.RegisterStackSpec(spec); err != nil {
			log.Fatal(err)
		}
		log.Printf("registered stack spec %q (%s)", spec.Name, spec.Hash())
	}

	// Bind before constructing the server: cluster membership may need
	// the bound address (a -peers-file cluster boots on ephemeral ports,
	// publishes them via -addr-file, and reads the assembled list back).
	// Connections arriving in the gap queue in the accept backlog.
	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", ln.Addr())
	if *addrFileFlag != "" {
		// Written atomically (tmp + rename) so a script polling the file
		// never reads a partial address.
		tmp := *addrFileFlag + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.Rename(tmp, *addrFileFlag); err != nil {
			log.Fatal(err)
		}
	}

	var peers []string
	var self string
	if *peersFlag != "" || *peersFileFlag != "" {
		if peers, err = loadPeers(*peersFlag, *peersFileFlag); err != nil {
			log.Fatal(err)
		}
		if self, err = resolveSelf(peers, ln.Addr()); err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster of %d nodes, this one is %s", len(peers), self)
	}

	srv := server.New(server.Config{
		Workers:            *workersFlag,
		CacheEntries:       *cacheFlag,
		MaxJobsPerSweep:    *maxJobsFlag,
		Peers:              peers,
		Self:               self,
		MaxSessions:        *maxSessionsFlag,
		SessionIdleTimeout: *sessionIdleFlag,
	})

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: flip /healthz to 503 and refuse new sweeps
	// immediately (so keep-alive clients and load balancers see the
	// instance leave the pool at the start of the window), let
	// streaming requests finish, then cancel whatever is left.
	log.Printf("signal received, draining (timeout %s)", *drainFlag)
	srv.Drain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		log.Printf("drain timeout exceeded, canceling in-flight jobs")
	}
	srv.Stop()
	fmt.Fprintln(os.Stderr, "dtmserved: stopped")
}
